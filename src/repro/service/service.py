"""The asyncio evaluation front end: admission, batching windows, shedding.

:class:`Service` turns the synchronous coalescer into a concurrent query
server.  Requests arrive via :meth:`Service.submit` (or the per-kind
conveniences ``pr`` / ``expected_value`` / ``percentiles`` / ...), queue
behind a bounded asyncio queue, and are drained by worker tasks.  Each
worker takes one request, sleeps the configured **batching window** to
let same-shape neighbours accumulate, drains whatever arrived, and hands
the whole batch to :func:`~repro.service.coalescer.evaluate_batch` on a
thread pool — the event loop keeps admitting while evaluation runs.

Three layers of admission control, all reusing the existing evaluation
vocabulary:

- **Backpressure / shedding** — when the pending queue exceeds
  ``max_pending`` the request is *shed*: :class:`ServiceOverloaded`
  propagates to the caller immediately and the shed counter increments.
  Callers see load instead of unbounded latency.
- **Sample budgets** — ``Service(sample_budget=...)`` caps cumulative
  joint samples across all requests, enforced at admission with the
  same :class:`~repro.SampleBudgetExceeded` solo evaluation raises.
- **Deadlines** — ``Service(deadline=...)`` bounds wall-clock lifetime
  from :meth:`start`, rejecting with :class:`~repro.DeadlineExceeded`.

Determinism: the service moves *scheduling* around, never *streams*.  A
seeded request's samples come from ``default_rng(SeedSequence(seed))``
regardless of which batch, worker or retry answered it, so results are
bit-identical across ``workers=1`` vs ``workers=2`` vs solo evaluation.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core import conditionals as _cond
from repro.core.uncertain import Uncertain
from repro.rng import ensure_rng
from repro.runtime.metrics import (
    METRICS,
    DEFAULT_LATENCY_BOUNDS,
    LatencyHistogram,
    render_histogram,
)

from repro.runtime.cancellation import CancellationToken
from repro.service.coalescer import CoalescerStats, evaluate_batch
from repro.service.degradation import BrownoutController, BulkheadRegistry
from repro.service.errors import ServiceClosed, ServiceOverloaded
from repro.service.requests import QUERY_KINDS, QueryRequest, QueryResult

__all__ = ["Service", "ServiceClosed", "ServiceOverloaded"]


#: Occupancy histogram bounds: requests per coalesced batch.
_OCCUPANCY_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class _ServiceMetrics:
    """Thread-safe service-level counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_by_kind: dict[str, int] = {}
        self.shed = 0
        self.rejected = 0
        self.failures = 0
        self.batches = 0
        self.groups = 0
        self.coalesced = 0
        self.pooled = 0
        self.engine_runs = 0
        self.samples_drawn = 0
        self.group_fallbacks = 0
        self.degraded = 0
        self.cancelled = 0
        self.bulkhead_rejected = 0
        self.batch_occupancy = LatencyHistogram(bounds=_OCCUPANCY_BOUNDS)
        self.latency: dict[str, LatencyHistogram] = {}

    def admit(self, kind: str) -> None:
        with self._lock:
            self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, size: int, stats: CoalescerStats) -> None:
        with self._lock:
            self.batches += 1
            self.batch_occupancy.observe(size)
            self.groups += stats.groups
            self.coalesced += stats.coalesced_requests
            self.pooled += stats.pooled_requests
            self.engine_runs += stats.engine_runs
            self.samples_drawn += stats.samples_drawn
            self.group_fallbacks += stats.group_fallbacks
            self.failures += stats.failures
            self.degraded += stats.degraded_requests
            self.cancelled += stats.cancelled
            self.bulkhead_rejected += stats.bulkhead_rejections

    def record_latency(self, kind: str, seconds: float) -> None:
        with self._lock:
            hist = self.latency.get(kind)
            if hist is None:
                hist = self.latency[kind] = LatencyHistogram(
                    bounds=DEFAULT_LATENCY_BOUNDS
                )
            hist.observe(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests_by_kind": dict(self.requests_by_kind),
                "requests_total": sum(self.requests_by_kind.values()),
                "shed": self.shed,
                "rejected": self.rejected,
                "failures": self.failures,
                "batches": self.batches,
                "groups": self.groups,
                "coalesced_requests": self.coalesced,
                "pooled_requests": self.pooled,
                "engine_runs": self.engine_runs,
                "samples_drawn": self.samples_drawn,
                "group_fallbacks": self.group_fallbacks,
                "degraded_requests": self.degraded,
                "cancelled": self.cancelled,
                "bulkhead_rejected": self.bulkhead_rejected,
                "batch_occupancy": self.batch_occupancy.as_dict(),
                "latency_by_kind": {
                    kind: hist.as_dict()
                    for kind, hist in self.latency.items()
                },
            }


class Service:
    """An asyncio front end that batches concurrent uncertainty queries.

    Parameters
    ----------
    engine:
        Execution engine for bulk evaluations (``"fused"`` amortises one
        generated kernel across every same-shape request in a batch).
        ``None`` defers to the ambient configuration.
    window:
        Batching window in seconds.  After dequeuing the first request a
        worker waits this long for same-shape neighbours before
        evaluating.  ``0.0`` disables the wait but still drains whatever
        is already queued (natural batching under load).
    max_batch:
        Per-evaluation batch cap; ``1`` disables coalescing entirely
        (the "unbatched" baseline in the load benchmark).
    max_pending:
        Queue bound for shedding: a ``submit`` that would make the
        pending count exceed this raises :class:`ServiceOverloaded`.
    workers:
        Concurrent batch evaluators (asyncio tasks, each running its
        batches on a shared thread pool of the same size).
    sample_budget / deadline:
        Admission limits, with solo-evaluation semantics (see module
        docstring).
    retries:
        Per-request retries when a bulk evaluation faults and the
        coalescer falls back to per-request evaluation.
    pool_seed:
        Seed for the coalescer's pooled (seedless-request) stream.
    metrics:
        The :class:`~repro.runtime.RuntimeMetrics` sink whose engine
        histograms ``render_metrics`` exports; defaults to the
        process-global sink.
    brownout:
        Graceful-degradation controller: ``True`` for a default
        :class:`~repro.service.degradation.BrownoutController`, an
        instance for custom levels/watermarks, ``None`` (default) to
        disable — the service then degrades the classic way, by
        shedding only.  With a controller installed, queue pressure
        scales every request's sample budget down through the
        controller's levels *before* the ``max_pending`` shed bound
        fires; degraded answers carry a ``DegradationRecord``.
    bulkheads:
        Per-structural-group isolation: ``True`` for a default
        :class:`~repro.service.degradation.BulkheadRegistry`, an
        instance for custom limits/breakers, ``None`` (default) to
        disable.  Each coalescer group then runs behind its own
        concurrency limit and circuit breaker; a tripped group fails
        fast with :class:`~repro.service.errors.BulkheadRejected`
        while healthy groups keep serving.
    """

    def __init__(
        self,
        engine: "str | None" = None,
        *,
        window: float = 0.002,
        max_batch: int = 256,
        max_pending: int = 1024,
        workers: int = 1,
        sample_budget: "int | None" = None,
        deadline: "float | None" = None,
        retries: int = 1,
        pool_seed: "int | None" = None,
        metrics=METRICS,
        brownout: "BrownoutController | bool | None" = None,
        bulkheads: "BulkheadRegistry | bool | None" = None,
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.workers = int(workers)
        self.retries = int(retries)
        self._pool_rng = ensure_rng(pool_seed)
        self._runtime_metrics = metrics
        self.metrics = _ServiceMetrics()
        if brownout is True:
            brownout = BrownoutController()
        self.brownout: "BrownoutController | None" = brownout or None
        if bulkheads is True:
            bulkheads = BulkheadRegistry()
        self.bulkheads: "BulkheadRegistry | None" = bulkheads or None
        # Admission state shares EvaluationConfig's budget vocabulary: the
        # service owns a private config (never installed as the ambient
        # process config — worker threads must not race on the global).
        self._budget = sample_budget
        self._deadline = deadline
        self._config: "_cond.EvaluationConfig | None" = None
        self._queue: "asyncio.Queue | None" = None
        self._tasks: list[asyncio.Task] = []
        self._executor: "ThreadPoolExecutor | None" = None
        self._closed = True

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "Service":
        if not self._closed:
            return self
        # A private config with the service's budgets layered over the
        # ambient defaults; the deadline clock starts here, at start().
        base = _cond.get_config()
        fields = {
            f.name: getattr(base, f.name)
            for f in dataclasses.fields(_cond.EvaluationConfig)
            if f.name not in (
                "samples_drawn", "conditionals_evaluated", "samples_executed"
            )
        }
        fields["sample_budget"] = self._budget
        fields["deadline"] = self._deadline
        if self.engine is not None:
            fields["engine"] = self.engine
        self._config = _cond.EvaluationConfig(**fields)
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._closed = False
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"repro-service-{i}")
            for i in range(self.workers)
        ]
        return self

    async def stop(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._tasks:
            await self._queue.put(None)  # one close sentinel per worker
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "Service":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- admission -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def _admission_check(self, request: QueryRequest) -> None:
        config = self._config
        from repro.core.sampling import DeadlineExceeded, SampleBudgetExceeded

        if config.deadline is not None and time.monotonic() > config.deadline_at:
            self.metrics.record_rejected()
            raise DeadlineExceeded(
                f"service deadline of {config.deadline}s expired"
            )
        n = request.resolve_samples(config)
        if config.sample_budget is not None:
            # Reserve nothing here — the coalescer charges the config when
            # it actually draws — but reject requests that cannot fit.
            if config.samples_executed + n > config.sample_budget:
                self.metrics.record_rejected()
                raise SampleBudgetExceeded(
                    f"service sample budget exhausted: "
                    f"{config.samples_executed} drawn + {n} requested > "
                    f"budget {config.sample_budget}"
                )

    # -- the request path ----------------------------------------------------

    async def submit(self, request: QueryRequest) -> QueryResult:
        """Queue one request and await its result.

        Raises :class:`ServiceOverloaded` (shed), the admission errors
        (:class:`SampleBudgetExceeded` / :class:`DeadlineExceeded`), or
        whatever exception ultimately answered the request.
        """
        if self._closed or self._queue is None:
            raise ServiceClosed("Service.submit before start() or after stop()")
        pending = self._queue.qsize()
        if self.brownout is not None:
            # Feed the controller *before* the shed decision: brownout is
            # the softer response, shedding the last resort above it.
            self.brownout.observe(pending, self.max_pending)
        if pending >= self.max_pending:
            self.metrics.record_shed()
            self._runtime_metrics.record_degradation(shed=1)
            raise ServiceOverloaded(
                pending=pending,
                max_pending=self.max_pending,
                retry_after_hint=self._drain_hint(pending),
            )
        self._admission_check(request)
        self.metrics.admit(request.kind)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryResult]" = loop.create_future()
        token = CancellationToken.with_timeout(request.deadline)
        # A caller abandoning its future (asyncio cancellation, client
        # disconnect) trips the token, freeing the worker thread at the
        # next engine batch boundary instead of burning it to completion.
        future.add_done_callback(
            lambda f, t=token: t.cancel("client-disconnected")
            if f.cancelled() else None
        )
        enqueued = time.perf_counter()
        await self._queue.put((request, future, enqueued, token))
        return await future

    def _drain_hint(self, pending: int) -> float:
        """``Retry-After``-style backoff suggestion (seconds) for a shed:
        a rough queue-drain estimate from the batching parameters."""
        batches_left = max(1.0, pending / float(self.max_batch))
        per_batch = max(self.window, 0.001)
        return round(batches_left * per_batch / self.workers, 6)

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            if self.window > 0.0 and self.max_batch > 1:
                await asyncio.sleep(self.window)
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:  # close sentinel: put back and finish batch
                    self._queue.put_nowait(None)
                    break
                batch.append(extra)
            requests = [req for req, _, _, _ in batch]
            tokens = {i: tok for i, (_, _, _, tok) in enumerate(batch)}
            decision = None
            if self.brownout is not None:
                # Re-observe at drain time (pressure may have moved while
                # this worker slept the window), then freeze one decision
                # for the whole batch: every request in it is answered at
                # a *level*, which is what keeps seeded answers
                # reproducible (see docs/degradation.md).
                self.brownout.observe(self._queue.qsize(), self.max_pending)
                decision = self.brownout.decision()
            stats = CoalescerStats()
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._evaluate,
                    requests, stats, decision, tokens,
                )
            except BaseException as exc:  # defensive: executor-level failure
                outcomes = [exc] * len(batch)
            self.metrics.record_batch(len(batch), stats)
            self._runtime_metrics.record_degradation(
                degraded=stats.degraded_requests,
                cancelled=stats.cancelled,
                bulkhead_rejections=stats.bulkhead_rejections,
                level_now=decision.level if decision is not None else None,
                breakers_open_now=(
                    self.bulkheads.open_groups()
                    if self.bulkheads is not None else None
                ),
            )
            done = time.perf_counter()
            for (req, future, enqueued, _), outcome in zip(batch, outcomes):
                if future.cancelled():
                    continue
                latency = done - enqueued
                self.metrics.record_latency(req.kind, latency)
                if isinstance(outcome, BaseException):
                    future.set_exception(outcome)
                else:
                    outcome.latency_s = latency
                    future.set_result(outcome)

    def _evaluate(self, requests, stats, decision=None, tokens=None) -> list:
        """Thread-pool entry: run the coalescer with the service config."""
        return evaluate_batch(
            requests,
            engine=self._config.engine,
            config=self._config,
            pool_rng=self._pool_rng,
            retries=self.retries,
            stats=stats,
            degrade=decision,
            tokens=tokens,
            bulkheads=self.bulkheads,
        )

    # -- per-kind conveniences ----------------------------------------------

    async def pr(
        self, value: Uncertain, threshold: float = 0.5, *,
        samples: "int | None" = None, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="pr", threshold=threshold,
            samples=samples, seed=seed,
        ))

    async def is_probable(
        self, value: Uncertain, threshold: float = 0.5, *,
        samples: "int | None" = None, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="is_probable", threshold=threshold,
            samples=samples, seed=seed,
        ))

    async def expected_value(
        self, value: Uncertain, *,
        samples: "int | None" = None, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="expected_value", samples=samples, seed=seed,
        ))

    async def sample(
        self, value: Uncertain, *, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="sample", seed=seed,
        ))

    async def samples(
        self, value: Uncertain, n: int, *, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="samples", samples=n, seed=seed,
        ))

    async def percentiles(
        self, value: Uncertain, n: int = 100, *,
        samples: "int | None" = None, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="percentiles", divisions=n,
            samples=samples, seed=seed,
        ))

    async def confidence_interval(
        self, value: Uncertain, level: float = 0.95, *,
        samples: "int | None" = None, seed: "int | None" = None,
    ) -> QueryResult:
        return await self.submit(QueryRequest(
            value=value, kind="confidence_interval", level=level,
            samples=samples, seed=seed,
        ))

    # -- observability -------------------------------------------------------

    def health(self) -> dict:
        """Load-aware health: ``closed`` / ``overloaded`` / ``degraded`` /
        ``ok`` with the HTTP status ``/healthz`` should answer.

        - ``closed`` (503): not running.
        - ``overloaded`` (503): the queue is at the shed bound, or the
          brownout controller is pinned at its deepest level with the
          queue still above the high watermark — new work is being (or
          is about to be) refused.
        - ``degraded`` (200): serving everything, but at a brownout
          level > 0 or with open group breakers.  200 on purpose: a
          degraded instance is still a *correct* instance (answers are
          just wider), and flapping it out of a load balancer would turn
          brownout into an outage.
        - ``ok`` (200): nominal.
        """
        if self._closed:
            return {"status": "closed", "http": 503}
        pending = self.queue_depth
        level = self.brownout.level if self.brownout is not None else 0
        open_breakers = (
            self.bulkheads.open_groups() if self.bulkheads is not None else 0
        )
        detail = {
            "queue_depth": pending,
            "max_pending": self.max_pending,
            "degradation_level": level,
            "open_breakers": open_breakers,
        }
        if pending >= self.max_pending or (
            self.brownout is not None
            and self.brownout.at_max_level
            and level > 0
            and pending >= self.brownout.high_watermark * self.max_pending
        ):
            return {"status": "overloaded", "http": 503, **detail}
        if level > 0 or open_breakers > 0:
            return {"status": "degraded", "http": 200, **detail}
        return {"status": "ok", "http": 200, **detail}

    def stats(self) -> dict:
        """Service-level snapshot (counters, occupancy, latency by kind)."""
        snap = self.metrics.snapshot()
        snap["queue_depth"] = self.queue_depth
        snap["samples_executed"] = (
            self._config.samples_executed if self._config is not None else 0
        )
        snap["degradation"] = {
            "status": self.health()["status"],
            "brownout": (
                self.brownout.snapshot() if self.brownout is not None else None
            ),
            "degraded_requests": snap.pop("degraded_requests"),
            "cancelled": snap.pop("cancelled"),
            "bulkhead_rejected": snap.pop("bulkhead_rejected"),
            "shed": snap["shed"],
            "groups": (
                self.bulkheads.states() if self.bulkheads is not None else {}
            ),
        }
        return snap

    def render_metrics(self, prefix: str = "repro") -> str:
        """Prometheus text exposition: service gauges + runtime metrics.

        Covers queue depth, batch occupancy, shed/reject counts,
        per-kind request latency histograms (p50/p99 derivable via
        ``histogram_quantile``), and everything the runtime sink already
        tracks — including per-engine latency histograms.
        """
        snap = self.metrics.snapshot()
        lines: list[str] = []

        def counter(name: str, value, help_text: str, labels: str = "") -> None:
            lines.append(f"# HELP {prefix}_service_{name} {help_text}")
            kind = "gauge" if name.endswith("depth") else "counter"
            lines.append(f"# TYPE {prefix}_service_{name} {kind}")
            lines.append(f"{prefix}_service_{name}{labels} {value}")

        counter("queue_depth", self.queue_depth, "Requests awaiting a worker.")
        counter("shed_total", snap["shed"],
                "Requests shed at the max_pending bound.")
        counter("rejected_total", snap["rejected"],
                "Requests rejected by budget/deadline admission.")
        counter("failures_total", snap["failures"],
                "Requests that failed during evaluation.")
        counter("batches_total", snap["batches"], "Coalesced batches evaluated.")
        counter("groups_total", snap["groups"],
                "Structural groups across all batches.")
        counter("coalesced_requests_total", snap["coalesced_requests"],
                "Requests that shared a multi-request group.")
        counter("pooled_requests_total", snap["pooled_requests"],
                "Seedless requests answered from one pooled engine run.")
        counter("engine_runs_total", snap["engine_runs"],
                "Engine runs issued by the coalescer.")
        counter("samples_drawn_total", snap["samples_drawn"],
                "Joint samples drawn by the coalescer.")
        counter("group_fallbacks_total", snap["group_fallbacks"],
                "Bulk evaluations that fell back to per-request evaluation.")
        counter("degraded_requests_total", snap["degraded_requests"],
                "Requests answered at a brownout level > 0.")
        counter("cancelled_total", snap["cancelled"],
                "Requests cancelled mid-flight (deadline / disconnect).")
        counter("bulkhead_rejected_total", snap["bulkhead_rejected"],
                "Requests refused by a group bulkhead.")
        level = self.brownout.level if self.brownout is not None else 0
        lines.append(f"# HELP {prefix}_service_degradation_level "
                     "Current brownout level (0 = nominal).")
        lines.append(f"# TYPE {prefix}_service_degradation_level gauge")
        lines.append(f"{prefix}_service_degradation_level {level}")
        open_breakers = (
            self.bulkheads.open_groups() if self.bulkheads is not None else 0
        )
        lines.append(f"# HELP {prefix}_service_open_breakers "
                     "Structural groups with a non-closed circuit breaker.")
        lines.append(f"# TYPE {prefix}_service_open_breakers gauge")
        lines.append(f"{prefix}_service_open_breakers {open_breakers}")
        for kind in QUERY_KINDS:
            count = snap["requests_by_kind"].get(kind, 0)
            if count:
                lines.append(
                    f'{prefix}_service_requests_total{{kind="{kind}"}} {count}'
                )
        lines.extend(render_histogram(
            f"{prefix}_service_batch_occupancy", snap["batch_occupancy"]
        ))
        for kind, hist in snap["latency_by_kind"].items():
            lines.extend(render_histogram(
                f"{prefix}_service_request_latency_seconds", hist,
                labels={"kind": kind},
            ))
        body = "\n".join(lines) + "\n"
        return body + self._runtime_metrics.render_prometheus(prefix=prefix)
