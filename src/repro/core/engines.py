"""Execution engines: strategies for running a compiled evaluation plan.

A plan (:mod:`repro.core.plan`) is the *what*; an engine is the *how*.
Separating them creates the seam the ROADMAP asks for: today a vectorized
numpy engine and a reference interpreter, tomorrow parallel or sharded
engines behind the same interface.

- :class:`NumpyEngine` — the default.  Executes the flat program in one
  forward pass over preallocated slots; shared subexpressions are slot
  reads, batch evaluation is vectorized numpy.
- :class:`InterpreterEngine` — the seed implementation's behaviour: a
  per-call iterative post-order walk of the DAG with a dictionary memo.
  Kept as the baseline for the compilation microbenchmark and as an
  executable reference semantics for equivalence tests.

Both engines visit nodes in the same order, so given the same RNG they
produce bit-identical sample streams.  Engines are stateless; select one
per draw via ``evaluation_config(engine="numpy")`` or pass an instance.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core import conditionals as _cond
from repro.core.graph import Node
from repro.core.optimizer import resolve_level
from repro.core.plan import (
    OP_BINARY,
    OP_SOURCE,
    OP_UNARY,
    EvaluationPlan,
    PlanTelemetry,
)
from repro.resilience import health as _health
from repro.runtime import cancellation as _cancel
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace

#: Floating-point error handling for plan execution.  IEEE semantics are
#: the language of Uncertain<T> — division by a zero-crossing support
#: *means* inf, log of a boundary-crossing support *means* NaN — so the
#: engines centralise the ``np.errstate`` suppression here instead of
#: making every caller wrap draws in ``with np.errstate(divide="ignore")``.
#: The static analyzer (rule UNC101/UNC102) remains the compile-time
#: companion that flags where those values come from, and the resilience
#: layer's ``on_nonfinite`` policy is the runtime one.
_ERRSTATE = {"divide": "ignore", "invalid": "ignore", "over": "ignore"}


class EngineError(RuntimeError):
    """Raised when an engine cannot execute a plan."""


def _check_batch(values, node: Node, n: int) -> np.ndarray:
    """Validate the leading dimension of a node's batch output."""
    values = np.asarray(values)
    if values.shape[:1] != (n,):
        # Import here to avoid a cycle: sampling.py imports this module.
        from repro.core.sampling import SamplingError

        raise SamplingError(
            f"node {node!r} produced batch of shape {values.shape}, "
            f"expected leading dimension {n}"
        )
    return values


class ExecutionEngine:
    """Strategy interface: produce sample batches for a compiled plan.

    ``run`` fills (and returns) the plan's slot vector; ``sample`` is the
    common convenience returning just the root batch.  ``memo`` maps nodes
    to already-sampled batches: entries are reused, and every newly
    evaluated node is written back — this is what keeps shared variables
    consistent across multiple roots sampled under one
    :class:`~repro.core.sampling.SampleContext`.
    """

    name: str = "abstract"
    #: Engines that execute whatever plan they are handed can run the
    #: optimizer's rewritten program (``sample`` switches to
    #: ``plan.optimized(level)`` on memo-free draws).  The interpreter
    #: opts out to stay the *unoptimized* reference semantics, which makes
    #: every engine-equivalence test an end-to-end check of the optimizer's
    #: bit-identity contract.
    supports_optimized: bool = True

    def run(
        self,
        plan: EvaluationPlan,
        n: int,
        rng: np.random.Generator,
        memo: dict[Node, np.ndarray] | None = None,
        telemetry: PlanTelemetry | None = None,
    ) -> list:
        raise NotImplementedError

    def sample(
        self,
        plan: EvaluationPlan,
        n: int,
        rng: np.random.Generator,
        memo: dict[Node, np.ndarray] | None = None,
        telemetry: PlanTelemetry | None = None,
    ) -> np.ndarray:
        """Batch of ``n`` joint samples of the plan's root.

        This is the instrumented entry point: with a metrics sink active
        (the default) it attributes samples and wall time to this engine's
        name, with a tracer installed it records an
        ``engine.<name>.sample`` span, and with a non-default
        ``on_nonfinite`` policy it runs the numerical-health check of
        :mod:`repro.resilience.health` over the batch (per-slot NaN/Inf
        attribution, warn/raise/resample).  ``run`` stays raw for callers
        that benchmark or need every slot.
        """
        config = _cond.get_config()
        if memo is None and self.supports_optimized:
            # Memo-carrying draws (SampleContext) stay on the unoptimized
            # plan: memo keys are the *user's* node objects, and rewritten
            # plans may not contain them.
            level = resolve_level(config.optimize)
            if level:
                plan = plan.optimized(level)
        propagate = config.on_nonfinite == "propagate"
        metrics = _metrics.active()
        tracer = _trace.get_tracer()
        if metrics is None and tracer is None and propagate:
            return self.run(plan, n, rng, memo=memo, telemetry=telemetry)[
                plan.root_slot
            ]
        start = perf_counter()
        values = self.run(plan, n, rng, memo=memo, telemetry=telemetry)
        elapsed = perf_counter() - start
        if metrics is not None:
            metrics.record_engine(self.name, n, elapsed)
        if tracer is not None:
            tracer.record(
                f"engine.{self.name}.sample",
                start,
                elapsed,
                n=int(n),
                slots=len(plan.steps),
            )
        if propagate:
            return values[plan.root_slot]
        return _health.enforce(
            self, plan, values, n, rng, config, allow_resample=memo is None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _demanded(plan: EvaluationPlan, values: list) -> list[bool]:
    """Which slots must be evaluated to produce the root, given pre-seeded
    slots?  Mirrors the lazy interpreter: a subtree hidden entirely behind
    memoised nodes is never evaluated (and never consumes RNG)."""
    needed = [False] * len(values)
    stack = [plan.root_slot]
    steps = plan.steps
    while stack:
        slot = stack.pop()
        if needed[slot] or values[slot] is not None:
            continue
        needed[slot] = True
        stack.extend(steps[slot].parent_slots)
    return needed


class NumpyEngine(ExecutionEngine):
    """Vectorized single-pass execution over preallocated slots (default).

    The hot loop dispatches on the opcode chosen at compile time; binary
    and unary operators run without the generic ``evaluate_batch``
    indirection.  With a telemetry sink installed, per-node wall time is
    recorded by kind (slower; leave telemetry off on hot paths).
    """

    name = "numpy"

    def run(self, plan, n, rng, memo=None, telemetry=None):
        values: list = [None] * len(plan.steps)
        # Cooperative cancellation: the ambient token (installed by the
        # service tier or an ambient deadline) is polled once per program
        # step — the engine's natural batch boundary.  ``token`` is None
        # for ordinary evaluations, so the hot path pays one predictable
        # branch per step and nothing else; checks never touch ``rng``.
        token = _cancel.current()
        step_i = 0
        if memo is None and telemetry is None:
            # Hot path (the SPRT loop, expectations): run the specialized
            # program with bound callables and no bookkeeping.
            shape = (n,)
            with np.errstate(**_ERRSTATE):
                for entry in plan.program:
                    if token is not None:
                        token.check(step=step_i, steps=len(plan.program))
                        step_i += 1
                    opcode = entry[0]
                    if opcode == OP_BINARY:
                        _, op, slot, a, b, node = entry
                        out = op(values[a], values[b])
                    elif opcode == OP_SOURCE:
                        _, evaluate, slot, node = entry
                        out = evaluate((), n, rng)
                    elif opcode == OP_UNARY:
                        _, op, slot, a, node = entry
                        out = op(values[a])
                    else:
                        _, evaluate, slot, parent_slots, node = entry
                        out = evaluate([values[i] for i in parent_slots], n, rng)
                    if type(out) is not np.ndarray or out.shape[:1] != shape:
                        out = _check_batch(out, node, n)
                    values[slot] = out
            return values
        seeded = False
        if memo:
            slot_of = plan.slot_of
            for node, batch in memo.items():
                slot = slot_of.get(node)
                if slot is not None:
                    values[slot] = batch
                    seeded = True
        if seeded:
            needed = _demanded(plan, values)
            steps = [s for s in plan.steps if needed[s.slot]]
        else:
            steps = plan.steps
        if telemetry is None:
            with np.errstate(**_ERRSTATE):
                for step in steps:
                    if token is not None:
                        token.check(step=step_i, steps=len(steps))
                        step_i += 1
                    opcode = step.opcode
                    node = step.node
                    if opcode == OP_BINARY:
                        a, b = step.parent_slots
                        out = node.op(values[a], values[b])
                    elif opcode == OP_SOURCE:
                        out = node.evaluate_batch((), n, rng)
                    elif opcode == OP_UNARY:
                        out = node.op(values[step.parent_slots[0]])
                    else:
                        out = node.evaluate_batch(
                            [values[i] for i in step.parent_slots], n, rng
                        )
                    if type(out) is not np.ndarray or out.shape[:1] != (n,):
                        out = _check_batch(out, node, n)
                    values[step.slot] = out
        else:
            with np.errstate(**_ERRSTATE):
                for step in steps:
                    if token is not None:
                        token.check(step=step_i, steps=len(steps))
                        step_i += 1
                    start = perf_counter()
                    out = step.node.evaluate_batch(
                        [values[i] for i in step.parent_slots], n, rng
                    )
                    out = _check_batch(out, step.node, n)
                    values[step.slot] = out
                    telemetry.record_node(step.kind, perf_counter() - start)
            telemetry.record_batch(n)
        if memo is not None:
            for step in steps:
                memo[step.node] = values[step.slot]
        return values


class InterpreterEngine(ExecutionEngine):
    """The seed interpreter: walk the DAG per draw with a dictionary memo.

    Functionally identical to :class:`NumpyEngine` (same node visit order,
    same RNG stream); pays graph traversal on every batch.  Serves as the
    compiled-vs-interpreted baseline and as a second, independently
    implemented semantics for the equivalence tests.
    """

    name = "interpreter"
    supports_optimized = False

    def run(self, plan, n, rng, memo=None, telemetry=None):
        local: dict[Node, np.ndarray] = dict(memo) if memo else {}
        stack: list[tuple[Node, bool]] = [(plan.root, False)]
        token = _cancel.current()
        with np.errstate(**_ERRSTATE):
            while stack:
                node, expanded = stack.pop()
                if node in local:
                    continue
                if not expanded:
                    stack.append((node, True))
                    for parent in node.parents:
                        if parent not in local:
                            stack.append((parent, False))
                else:
                    if token is not None:
                        token.check(nodes_done=len(local), steps=len(plan.steps))
                    start = perf_counter() if telemetry is not None else 0.0
                    parent_values = [local[p] for p in node.parents]
                    out = _check_batch(
                        node.evaluate_batch(parent_values, n, rng), node, n
                    )
                    local[node] = out
                    if telemetry is not None:
                        telemetry.record_node(
                            type(node).__name__, perf_counter() - start
                        )
        if telemetry is not None:
            telemetry.record_batch(n)
        if memo is not None:
            memo.update(local)
        values: list = [None] * len(plan.steps)
        for node, slot in plan.slot_of.items():
            if node in local:
                values[slot] = local[node]
        return values


# ---------------------------------------------------------------------------
# Engine registry: names usable in ``evaluation_config(engine=...)``.
# ---------------------------------------------------------------------------

_ENGINES: dict[str, ExecutionEngine] = {}

#: Engines that live outside :mod:`repro.core` and register themselves on
#: import; resolved lazily so selecting them by name works even before
#: their module loads (and without making this module import them).
_LAZY_ENGINES = {
    "parallel": "repro.runtime.parallel",
    "fused": "repro.core.fused",
}


def register_engine(engine: ExecutionEngine, name: str | None = None) -> ExecutionEngine:
    """Register ``engine`` under ``name`` (defaults to ``engine.name``)."""
    key = name or engine.name
    if not key or key == "abstract":
        raise ValueError("engines must carry a concrete name")
    _ENGINES[key] = engine
    return engine


def get_engine(engine: "str | ExecutionEngine") -> ExecutionEngine:
    """Resolve an engine selection (a name or an instance) to an engine."""
    if isinstance(engine, ExecutionEngine):
        return engine
    try:
        return _ENGINES[engine]
    except KeyError:
        module = _LAZY_ENGINES.get(engine)
        if module is not None:
            import importlib

            importlib.import_module(module)
            if engine in _ENGINES:
                return _ENGINES[engine]
        raise EngineError(
            f"unknown execution engine {engine!r}; available: {sorted(_ENGINES)}"
        ) from None


def available_engines() -> tuple[str, ...]:
    return tuple(sorted(_ENGINES))


register_engine(NumpyEngine())
register_engine(InterpreterEngine())
