"""The ``Uncertain[T]`` type (Table 1 of the paper).

An ``Uncertain`` value encapsulates a random variable.  Its overloaded
operators construct Bayesian-network representations of computations instead
of executing them; the runtime samples those networks lazily at conditional
expressions, ``expected_value`` calls, and explicit ``sample`` requests.

Comparison operators return :class:`UncertainBool` — a Bernoulli random
variable whose parameter is the *evidence* for the comparison.  Using an
``UncertainBool`` where Python needs a concrete truth value (an ``if``)
triggers the implicit conditional: a hypothesis test of whether the evidence
exceeds 0.5 (Section 3.4).  The explicit conditional ``.pr(alpha)`` tests a
developer-chosen evidence threshold, which is how applications trade false
positives against false negatives.
"""

from __future__ import annotations

import operator
import warnings
from typing import Any, Callable

import numpy as np

from repro.core import conditionals as _cond
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    BindNode,
    LeafNode,
    Node,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import EvaluationPlan, compile_plan
from repro.core.sampling import SampleContext, _execute_plan
from repro.core.sprt import HypothesisTest, TestDecision, TestResult
from repro.dists.base import Distribution
from repro.dists.empirical import Empirical
from repro.dists.sampling_function import FunctionDistribution
from repro.resilience.policies import InconclusiveError, InconclusiveWarning
from repro.rng import ensure_rng
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace


def _as_node(value: Any) -> Node:
    """Coerce an operand into a graph node (Table 1's point-mass lifting)."""
    if isinstance(value, Uncertain):
        return value.node
    if isinstance(value, Node):
        return value
    if isinstance(value, Distribution):
        return LeafNode(value)
    return PointMassNode(value)


class Uncertain:
    """A random variable of base type ``T``, represented by a sampling DAG."""

    __slots__ = ("node", "_plan")

    def __init__(self, source: Any, label: str | None = None) -> None:
        """Wrap ``source`` as an uncertain value.

        ``source`` may be a :class:`~repro.dists.base.Distribution`, a
        zero-argument-style sampling function ``fn(rng) -> sample``, an
        existing graph :class:`Node`, or a plain value (lifted to a point
        mass).
        """
        if isinstance(source, Node):
            node = source
        elif isinstance(source, Distribution):
            node = LeafNode(source, label)
        elif isinstance(source, Uncertain):
            node = source.node
        elif callable(source):
            node = LeafNode(FunctionDistribution(source), label or "sampling_fn")
        else:
            node = PointMassNode(source)
        object.__setattr__(self, "node", node)
        object.__setattr__(self, "_plan", None)

    @classmethod
    def from_node(cls, node: Node) -> "Uncertain":
        out = object.__new__(cls)
        object.__setattr__(out, "node", node)
        object.__setattr__(out, "_plan", None)
        return out

    @property
    def plan(self) -> EvaluationPlan:
        """The compiled evaluation plan for this value's network.

        Compiled on first use and carried on the value (plus the global
        per-root cache), so every draw — the SPRT loop, ``expected_value``,
        ``pr()`` — reuses one flat program instead of re-walking the DAG.
        """
        plan = self._plan
        if plan is None:
            config = _cond.get_config()
            plan = compile_plan(
                self.node,
                telemetry=config.plan_telemetry,
                analyze=config.plan_analyzer,
            )
            object.__setattr__(self, "_plan", plan)
        return plan

    @classmethod
    def pointmass(cls, value: Any) -> "Uncertain":
        """Table 1's ``Pointmass :: T -> U T``."""
        return cls.from_node(PointMassNode(value))

    # -- graph construction: arithmetic -----------------------------------

    def _binary(self, other: Any, op, symbol: str, reflected: bool = False):
        if reflected:
            left, right = _as_node(other), self.node
        else:
            left, right = self.node, _as_node(other)
        return Uncertain.from_node(BinaryOpNode(op, left, right, symbol))

    def _compare(self, other: Any, op, symbol: str) -> "UncertainBool":
        node = BinaryOpNode(op, self.node, _as_node(other), symbol)
        return UncertainBool.from_node(node)

    def __add__(self, other):
        return self._binary(other, operator.add, "+")

    def __radd__(self, other):
        return self._binary(other, operator.add, "+", reflected=True)

    def __sub__(self, other):
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other):
        return self._binary(other, operator.sub, "-", reflected=True)

    def __mul__(self, other):
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other):
        return self._binary(other, operator.mul, "*", reflected=True)

    def __truediv__(self, other):
        return self._binary(other, operator.truediv, "/")

    def __rtruediv__(self, other):
        return self._binary(other, operator.truediv, "/", reflected=True)

    def __floordiv__(self, other):
        return self._binary(other, operator.floordiv, "//")

    def __rfloordiv__(self, other):
        return self._binary(other, operator.floordiv, "//", reflected=True)

    def __mod__(self, other):
        return self._binary(other, operator.mod, "%")

    def __rmod__(self, other):
        return self._binary(other, operator.mod, "%", reflected=True)

    def __pow__(self, other):
        return self._binary(other, operator.pow, "**")

    def __rpow__(self, other):
        return self._binary(other, operator.pow, "**", reflected=True)

    def __neg__(self):
        return Uncertain.from_node(UnaryOpNode(operator.neg, self.node, "neg"))

    def __pos__(self):
        return self

    def __abs__(self):
        return Uncertain.from_node(UnaryOpNode(np.abs, self.node, "abs"))

    def map(self, fn: Callable[[Any], Any], vectorized: bool = False,
            label: str | None = None) -> "Uncertain":
        """Functor map: lift a unary function over this variable.

        ``x.map(f)`` is a new uncertain value whose joint samples are
        ``f`` of this one's — correlation with ``x`` (and everything
        sharing its leaves) is preserved, because the mapped node reads
        the same slot.  With ``vectorized=True``, ``fn`` must accept the
        whole sample array at once (faster; required for ufunc fusion).
        """
        return Uncertain.from_node(
            ApplyNode(fn, (self.node,), vectorized=vectorized, label=label)
        )

    def flat_map(
        self, fn: Callable[[Any], Any], label: str | None = None
    ) -> "Uncertain":
        """Monadic bind: ``fn`` maps each joint sample to a *new* uncertain
        value, from which one sample is drawn.

        The exemplar's ``flatMap``: use it when the next stage of a model
        is itself uncertain and *parameterised by* this value — e.g. a
        travel time whose distribution depends on a sampled congestion
        state.  ``fn`` may return an :class:`Uncertain`, a
        :class:`~repro.dists.base.Distribution`, or a plain value (treated
        as a point mass).  Like every lifted operation the bind preserves
        row-wise dependence on this variable; plans containing a bind are
        structurally opaque (no fused kernels, no cross-session sharing).
        """
        return Uncertain.from_node(BindNode(fn, self.node, label=label))

    # -- graph construction: comparisons (Order :: U T -> U T -> U Bool) --

    def __lt__(self, other):
        return self._compare(other, operator.lt, "<")

    def __le__(self, other):
        return self._compare(other, operator.le, "<=")

    def __gt__(self, other):
        return self._compare(other, operator.gt, ">")

    def __ge__(self, other):
        return self._compare(other, operator.ge, ">=")

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other, operator.eq, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other, operator.ne, "!=")

    __hash__ = object.__hash__  # identity semantics; == builds a graph node

    def between(self, low: Any, high: Any) -> "UncertainBool":
        """Evidence that ``low <= self <= high`` (one joint network)."""
        return (low <= self) & (self <= high)

    # -- evaluation --------------------------------------------------------

    def __bool__(self) -> bool:
        raise TypeError(
            "an Uncertain value has no direct truth value; compare it "
            "(e.g. `speed > 4`) to obtain evidence, then branch on that. "
            "Coercing an estimate to a fact is the uncertainty bug the "
            "linter flags as UNC201 — run `python -m repro.analysis lint "
            "<your code>` and see docs/analysis.md for the rule catalogue"
        )

    def sample(
        self,
        rng: np.random.Generator | int | None = None,
        engine: "str | object | None" = None,
    ) -> Any:
        """Draw one joint sample of the computation."""
        return _execute_plan(self.plan, 1, self._resolve_rng(rng), engine=engine)[0]

    def samples(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        engine: "str | object | None" = None,
    ) -> np.ndarray:
        """Draw ``n`` independent joint samples via the cached plan.

        ``engine`` overrides the ambient configuration's execution engine
        for this draw (a registered name like ``"numpy"``/``"parallel"``
        or an :class:`~repro.core.engines.ExecutionEngine` instance).
        """
        return _execute_plan(self.plan, n, self._resolve_rng(rng), engine=engine)

    def sample_with(
        self, context: SampleContext, engine: "str | object | None" = None
    ) -> np.ndarray:
        """Sample under a shared :class:`SampleContext` (shared leaves stay
        consistent across multiple roots).  ``engine`` overrides the
        context's engine for this evaluation."""
        return context.value_of(self.node, engine=engine)

    def expected_value(
        self,
        n: int | None = None,
        rng: np.random.Generator | int | None = None,
        adaptive: bool = False,
        **adaptive_options,
    ) -> Any:
        """Table 1's ``E :: U T -> T`` — sample mean over ``n`` draws.

        The paper's implementation draws a fixed number of samples; ``n``
        defaults to the ambient configuration's ``expectation_samples``.
        With ``adaptive=True`` the CLT stopping rule of
        :func:`repro.core.expectation.expected_value_adaptive` sizes the
        sample instead (its keyword options pass through).
        :meth:`E` is this method under the paper's name — the same
        attribute, not a wrapper.
        """
        from repro.core.expectation import expected_value as _expected

        return _expected(self, n=n, rng=rng, adaptive=adaptive, **adaptive_options)

    # C#-flavoured name used throughout the paper's listings: a true alias
    # (``Uncertain.E is Uncertain.expected_value``), so the signatures can
    # never drift apart.
    E = expected_value  # noqa: N815

    def _estimator_n(self, n: int | None, default_field: str) -> int:
        """Shared ``n`` defaulting for the moment/interval estimators."""
        if n is None:
            n = getattr(_cond.get_config(), default_field)
        if n <= 0:
            raise ValueError(f"sample size must be positive, got {n}")
        return int(n)

    def sd(self, n: int | None = None, rng=None) -> float:
        """Monte-Carlo standard deviation estimate.

        ``n`` defaults to the active configuration's ``estimator_samples``.
        """
        n = self._estimator_n(n, "estimator_samples")
        return float(np.std(np.asarray(self.samples(n, rng), dtype=float)))

    def var(self, n: int | None = None, rng=None) -> float:
        """Monte-Carlo variance estimate.

        ``n`` defaults to the active configuration's ``estimator_samples``.
        """
        n = self._estimator_n(n, "estimator_samples")
        return float(np.var(np.asarray(self.samples(n, rng), dtype=float)))

    def ci(
        self, level: float = 0.95, n: int | None = None, rng=None
    ) -> tuple[float, float]:
        """Central credible interval estimated from ``n`` samples.

        ``n`` defaults to the active configuration's ``ci_samples``.
        """
        if not 0 < level < 1:
            raise ValueError(f"level must be in (0, 1), got {level}")
        n = self._estimator_n(n, "ci_samples")
        values = np.asarray(self.samples(n, rng), dtype=float)
        tail = (1.0 - level) / 2.0
        return (
            float(np.quantile(values, tail)),
            float(np.quantile(values, 1.0 - tail)),
        )

    def percentiles(
        self,
        n: int | None = None,
        *,
        samples: int | None = None,
        rng=None,
        engine: "str | object | None" = None,
    ) -> np.ndarray:
        """The value's percentile curve from a Monte-Carlo draw.

        Returns an array of ``n + 1`` quantile estimates at evenly spaced
        probabilities ``0/n, 1/n, ..., n/n`` — with the default
        ``n=100``, ``p[50]`` is the median and ``p[90]`` the 90th
        percentile, mirroring the exemplar's
        ``total.percentiles(sampleCount=...)``.  ``samples`` is the
        Monte-Carlo sample count (defaults to the active configuration's
        ``ci_samples``); draws go through the cached/optimized plan under
        the ambient engine, budgets and deadline, or under an explicit
        ``engine=`` override.
        """
        if n is None:
            n = 100
        if n < 1:
            raise ValueError(f"percentile divisions must be >= 1, got {n}")
        samples = self._estimator_n(samples, "ci_samples")
        values = np.asarray(
            self.samples(samples, rng, engine=engine), dtype=float
        )
        return np.quantile(values, np.linspace(0.0, 1.0, int(n) + 1))

    def confidence_interval(
        self,
        level: float = 0.95,
        *,
        samples: int | None = None,
        rng=None,
        engine: "str | object | None" = None,
    ) -> tuple[float, float]:
        """Central credible interval at ``level`` (exemplar's
        ``confidenceInterval``).

        ``samples`` defaults to the active configuration's ``ci_samples``;
        the draw honors the ambient engine, budgets and deadline.  The
        short-form :meth:`ci` remains as the positional-argument
        spelling of the same estimator.
        """
        if not 0 < level < 1:
            raise ValueError(f"level must be in (0, 1), got {level}")
        samples = self._estimator_n(samples, "ci_samples")
        values = np.asarray(
            self.samples(samples, rng, engine=engine), dtype=float
        )
        tail = (1.0 - level) / 2.0
        return (
            float(np.quantile(values, tail)),
            float(np.quantile(values, 1.0 - tail)),
        )

    def is_probable(
        self,
        threshold: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> bool:
        """Is this value more likely than ``threshold`` to be truthy?

        The exemplar's ``isProbable``: on an :class:`UncertainBool` it is
        the explicit conditional ``pr(threshold)``; on a general value it
        first lifts truthiness (``self != 0``) and then runs the same
        hypothesis test.  Unlike ``bool()`` coercion this never raises —
        it *is* the sanctioned way to turn evidence into a decision.
        """
        return (self != 0).pr(threshold, rng=rng)

    def histogram(
        self, bins: int = 50, n: int | None = None, rng=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Density histogram of ``n`` samples (counts normalised).

        ``n`` defaults to the active configuration's ``ci_samples``.
        """
        n = self._estimator_n(n, "ci_samples")
        values = np.asarray(self.samples(n, rng), dtype=float)
        return np.histogram(values, bins=bins, density=True)

    def given(self, evidence: "UncertainBool", **kwargs) -> "Uncertain":
        """Conditional distribution given uncertain evidence: ``x.given(x > 0)``.

        The evidence may share variables with this value; joint samples are
        drawn under a shared context and rejected where the evidence fails.
        See :func:`repro.core.conditioning.condition` for the knobs.
        """
        from repro.core.conditioning import condition

        return condition(self, evidence, **kwargs)

    def diagnose(self, samples: int = 0, rng=None, *,
                 bounds: bool = False) -> list:
        """Diagnostics for this value's Bayesian network.

        Runs the interval and affine abstract interpreters of
        :mod:`repro.analysis` over the compiled plan and returns the
        :class:`~repro.analysis.Diagnostic` records — division by
        zero-crossing supports, statically decided comparisons,
        correlation-collapsed comparisons, foldable constant sub-DAGs,
        and friends — without drawing a single sample.  See
        ``docs/analysis.md`` for the rule catalogue.

        With ``samples > 0``, additionally executes a probe batch of
        that many joint samples and appends one runtime **UNC301**
        diagnostic per plan slot that introduced NaN/Inf values,
        attributed by :func:`repro.resilience.attribute_nonfinite`.
        The probe uses its own deterministic RNG (seed 0 unless ``rng``
        is given) so diagnosing never perturbs the ambient sample
        stream.

        With ``bounds=True``, appends one opt-in **UNC100** info
        diagnostic for the root: the affine-inferred support and a sound
        standard-deviation upper bound (``inf`` when nothing bounds it).
        """
        from repro.analysis.diagnostics import analyze_plan

        diagnostics = list(analyze_plan(self.plan))
        if bounds:
            diagnostics.append(self._bounds_diagnostic())
        if samples:
            diagnostics.extend(self._runtime_diagnostics(int(samples), rng))
        return diagnostics

    def _bounds_diagnostic(self):
        """The UNC100 static bound report for this value's root slot."""
        from repro.analysis.affine import infer_affine, sd_bounds
        from repro.analysis.diagnostics import Diagnostic
        from repro.analysis.rules import ALL_RULES

        plan = self.plan
        forms = infer_affine(plan)
        slot = plan.root_slot
        support = forms[slot].range
        sd = sd_bounds(plan, forms)[slot]
        rule = ALL_RULES["UNC100"]
        return Diagnostic(
            rule=rule.id,
            severity=rule.severity,
            message=(
                f"static bounds: support {support}, "
                f"sd <= {sd:.6g} (affine domain, sound upper bounds)"
            ),
            slot=slot,
            node_uid=plan.steps[slot].node.uid,
            node_label=plan.steps[slot].node.label,
            data={
                "support": [support.lower, support.upper],
                "sd_bound": sd,
            },
        )

    def _runtime_diagnostics(self, n: int, rng) -> list:
        """Probe ``n`` joint samples and report UNC301 non-finite findings."""
        from repro.analysis.diagnostics import Diagnostic
        from repro.analysis.rules import ALL_RULES
        from repro.core.engines import get_engine
        from repro.resilience import health as _health

        if n <= 0:
            raise ValueError(f"probe sample size must be positive, got {n}")
        plan = self.plan
        values = get_engine("numpy").run(
            plan, n, ensure_rng(rng if rng is not None else 0)
        )
        rule = ALL_RULES["UNC301"]
        out = []
        for attr in _health.attribute_nonfinite(plan, values):
            step = plan.steps[attr.slot]
            out.append(
                Diagnostic(
                    rule=rule.id,
                    severity=rule.severity,
                    message=f"{attr.describe()} in a probe of {n} joint sample(s)",
                    slot=attr.slot,
                    node_uid=step.node.uid,
                    node_label=step.node.label,
                    data={
                        "rows": attr.rows,
                        "first_row": attr.first_row,
                        "kind": attr.kind,
                        "probe_samples": n,
                    },
                )
            )
        return out

    def to_empirical(self, n: int = 10_000, rng=None) -> "Uncertain":
        """Freeze this computation into a fixed-pool empirical leaf.

        Useful to amortise an expensive network across many downstream
        conditionals — the fixed-pool strategy Parakeet uses for its HMC
        posterior (Section 5.3).
        """
        return Uncertain(Empirical(self.samples(n, rng)))

    @staticmethod
    def _resolve_rng(rng) -> np.random.Generator:
        if rng is None:
            return _cond.get_config().rng
        return ensure_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from repro.core.graph import node_count

        return f"Uncertain(nodes={node_count(self.node)}, root={self.node.label!r})"


class UncertainBool(Uncertain):
    """``Uncertain[bool]`` — a Bernoulli whose parameter is evidence.

    Logical operators follow Table 1 (``and``/``or``/``not`` lift to the
    network); truth-value conversion runs the implicit conditional.
    """

    __slots__ = ()

    # -- logical algebra ----------------------------------------------------

    def _logical(self, other: Any, op, symbol: str) -> "UncertainBool":
        node = BinaryOpNode(op, self.node, _as_node(other), symbol)
        return UncertainBool.from_node(node)

    def __and__(self, other):
        return self._logical(other, np.logical_and, "and")

    __rand__ = __and__

    def __or__(self, other):
        return self._logical(other, np.logical_or, "or")

    __ror__ = __or__

    def __xor__(self, other):
        return self._logical(other, np.logical_xor, "xor")

    __rxor__ = __xor__

    def __invert__(self):
        return UncertainBool.from_node(
            UnaryOpNode(np.logical_not, self.node, "not")
        )

    # -- conditional semantics ----------------------------------------------

    def __bool__(self) -> bool:
        """Implicit conditional: is it more likely than not to be true?

        Runs the ambient hypothesis test of H0: Pr[cond] <= 0.5 against
        HA: Pr[cond] > 0.5.  An inconclusive test (max samples hit inside
        the indifference region) returns ``False`` — the paper's ternary
        logic.
        """
        return self.pr(0.5)

    def pr(
        self,
        threshold: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> bool:
        """Explicit conditional: evidence exceeds ``threshold``?

        ``(speed < 4).pr(0.9)`` asks for at least 90% evidence, trading
        false positives for false negatives as Section 3.4 describes.
        """
        return self.test(threshold, rng=rng).decision.as_bool()

    def test(
        self,
        threshold: float = 0.5,
        test: HypothesisTest | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> TestResult:
        """Run the conditional's hypothesis test, returning diagnostics."""
        config = _cond.get_config()
        if test is None:
            test = config.make_test(threshold)
        rng = self._resolve_rng(rng)
        plan = self.plan
        window = None
        if config.sample_cache:
            from repro.core.ledger import LEDGER

            window = LEDGER.open_window(plan, rng, None, config)

        def draw(k: int) -> np.ndarray:
            # Sequential batches read disjoint windows of one ledger
            # stream; a plain ledger read would hand every batch the
            # same prefix rows and wreck the test's statistics.
            if window is not None:
                rows = window.draw(k)
                if rows is not None:
                    return np.asarray(rows, dtype=bool)
            return np.asarray(
                _execute_plan(plan, k, rng, use_ledger=False), dtype=bool
            )

        result = test.run(draw)
        config.record(result.samples_used)
        if result.decision is TestDecision.INCONCLUSIVE:
            self._apply_inconclusive_policy(config, result)
        return result

    @staticmethod
    def _apply_inconclusive_policy(config, result: TestResult) -> None:
        """Apply ``config.on_inconclusive`` to a truncated test result.

        ``"best-guess"`` keeps the paper's ternary mapping (inconclusive
        branches ``False``); ``"warn"`` raises an
        :class:`~repro.resilience.InconclusiveWarning`; ``"raise"`` turns
        the truncation into an :class:`~repro.resilience.InconclusiveError`
        carrying the structured :class:`~repro.resilience.Inconclusive`
        outcome.  Every truncation is counted in the runtime metrics and
        traced, whatever the policy.
        """
        policy = config.on_inconclusive
        outcome = result.inconclusive
        sink = _metrics.active()
        if sink is not None:
            sink.record_inconclusive(policy)
        _trace.event(
            "test.inconclusive",
            policy=policy,
            samples=result.samples_used,
            p_hat=result.p_hat,
            threshold=outcome.threshold if outcome is not None else None,
        )
        message = (
            outcome.describe()
            if outcome is not None
            else f"hypothesis test inconclusive after {result.samples_used} samples"
        )
        if policy == "warn":
            warnings.warn(InconclusiveWarning(message), stacklevel=4)
        elif policy == "raise":
            raise InconclusiveError(message, outcome)

    def is_probable(
        self,
        threshold: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> bool:
        """The explicit conditional under the exemplar's name.

        ``(speed > 4).is_probable(0.9)`` is ``(speed > 4).pr(0.9)`` — no
        extra truthiness node is inserted for a value that is already
        Boolean evidence.
        """
        return self.pr(threshold, rng=rng)

    def evidence(self, n: int | None = None, rng=None) -> float:
        """Direct Monte-Carlo estimate of Pr[condition] from ``n`` samples.

        This is the quantity the hypothesis tests reason about; exposing it
        supports plotting figures like the paper's Figure 9.  ``n``
        defaults to the active configuration's ``ci_samples``.
        """
        n = self._estimator_n(n, "ci_samples")
        values = np.asarray(self.samples(n, rng), dtype=bool)
        return float(values.mean())


def uncertain(source: Any, label: str | None = None) -> Uncertain:
    """Convenience constructor: ``uncertain(Gaussian(0, 1))``."""
    return Uncertain(source, label=label)
