"""Microbenchmark: static analysis must stay cheap enough for compile time.

``EvaluationConfig.enable_plan_analysis()`` runs the abstract interpreter
once per freshly compiled plan, inside the sampling path.  For that to be
a reasonable default to recommend, a full ``analyze_plan`` — interval
*and* affine inference plus all rule checks — over a fig08-style
shared-subexpression network has to complete in well under a millisecond.
The same budget applies to the stream-safety certifier, which runs once
per fresh kernel inside ``_prepare``: certifying a rewrite plus a fused
kernel must also stay under a millisecond, or skipping the probe run
would buy nothing.  This bench builds such a graph (~60 slots, heavy node
sharing, a mix of arithmetic, comparisons, point masses and a division),
measures both passes, asserts the <1 ms budgets, and records the numbers
in the benchmark JSON.
"""

from __future__ import annotations

import time

from repro.analysis import analyze_plan
from repro.analysis.certify import certify_kernel, certify_rewrite
from repro.analysis.intervals import infer_intervals
from repro.core import fused as fused_mod
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, Uniform

REPEATS = 200
BUDGET_SECONDS = 1e-3


def _fig08_style_root():
    """A shared-subexpression network in the spirit of Figure 8.

    Chains of ``acc = (acc + x) * y`` reuse the same leaves throughout, so
    nearly every slot is consumed more than once; a constant unit
    conversion and a final evidence comparison make all rule checks do
    real work.
    """
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Uniform(0.5, 1.5), label="Y")
    acc = x
    for _ in range(12):
        acc = (acc + x) * y
    scale = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
    scaled = acc * scale
    safe = scaled / (y + 1.0)  # divisor support [1.5, 2.5]: no finding
    evidence = safe > 4.0
    return evidence.node


def _best_seconds(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_analysis_under_one_millisecond_per_plan(benchmark):
    root = _fig08_style_root()
    plan = compile_plan(root)
    assert len(plan.steps) >= 30, "workload should be a non-trivial network"

    diagnostics = benchmark.pedantic(
        analyze_plan, args=(plan,), rounds=REPEATS, iterations=1
    )
    # The graph is clean except the deliberate constant sub-DAG.
    assert [d.rule for d in diagnostics] == ["UNC105"]

    best_full = _best_seconds(analyze_plan, plan)
    best_intervals = _best_seconds(infer_intervals, plan)
    print(
        f"\nanalysis of {len(plan.steps)}-slot fig08-style plan: "
        f"full pass {best_full * 1e6:.0f} us, "
        f"intervals only {best_intervals * 1e6:.0f} us "
        f"(budget {BUDGET_SECONDS * 1e3:.1f} ms)"
    )
    assert best_full < BUDGET_SECONDS, (
        f"analyze_plan took {best_full * 1e3:.3f} ms, over the "
        f"{BUDGET_SECONDS * 1e3:.1f} ms compile-time budget"
    )


def test_certifier_under_one_millisecond_per_plan(benchmark):
    plan = compile_plan(_fig08_style_root())
    opt = plan.optimized(2)
    spec = fused_mod._generate(opt, False)

    def certify_both():
        certify_rewrite(plan, opt)
        return certify_kernel(spec, opt)

    record = benchmark.pedantic(certify_both, rounds=REPEATS, iterations=1)
    assert record.status == "certified"

    best = _best_seconds(certify_both)
    print(
        f"\ncertification of {len(opt.steps)}-slot fig08-style plan: "
        f"rewrite + kernel {best * 1e6:.0f} us "
        f"(budget {BUDGET_SECONDS * 1e3:.1f} ms)"
    )
    assert best < BUDGET_SECONDS, (
        f"certifier took {best * 1e3:.3f} ms, over the "
        f"{BUDGET_SECONDS * 1e3:.1f} ms per-kernel budget"
    )
