"""Machine-learning substrate for the Parakeet case study (Section 5.3).

The paper approximates the Sobel operator (Parrot's image benchmark) with a
neural network and shows that consuming the network's point prediction in an
edge-detection conditional amplifies generalization error.  Parakeet instead
trains a *Bayesian* neural network via hybrid (Hamiltonian) Monte Carlo and
returns the posterior predictive distribution as an ``Uncertain[float]``.

- :mod:`repro.ml.mlp` — multilayer perceptron with backprop, from scratch.
- :mod:`repro.ml.sobel` — the exact Sobel operator (ground truth).
- :mod:`repro.ml.images` — synthetic image corpus and window datasets.
- :mod:`repro.ml.hmc` — Hamiltonian Monte Carlo over network weights.
- :mod:`repro.ml.parakeet` — Parrot (single network) and Parakeet
  (posterior-predictive ``Uncertain``) predictors.
- :mod:`repro.ml.evaluation` — the Figure 16 precision/recall sweep.
"""

from repro.ml.mlp import MLP
from repro.ml.sobel import sobel_magnitude, sobel_map
from repro.ml.images import make_dataset, synthetic_image
from repro.ml.hmc import HMCConfig, hmc_sample
from repro.ml.parakeet import Parakeet, Parrot, train_parakeet, train_parrot
from repro.ml.laplace import laplace_parakeet, train_laplace_parakeet
from repro.ml.evaluation import PrecisionRecallPoint, precision_recall_sweep

__all__ = [
    "MLP",
    "sobel_magnitude",
    "sobel_map",
    "synthetic_image",
    "make_dataset",
    "HMCConfig",
    "hmc_sample",
    "Parrot",
    "Parakeet",
    "train_parrot",
    "train_parakeet",
    "laplace_parakeet",
    "train_laplace_parakeet",
    "PrecisionRecallPoint",
    "precision_recall_sweep",
]
