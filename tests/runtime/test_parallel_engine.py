"""Determinism and failure-handling suite for the parallel sampling runtime.

The contract under test (docs/runtime.md):

- ``ParallelEngine(workers=k).run(plan, n, seed)`` is bit-identical for
  every ``k`` — chunk boundaries and chunk seeds depend only on
  ``(n, chunk_size, seed)``, never on the worker count;
- the stream is reproducible serially by running ``NumpyEngine`` chunk by
  chunk over the same layout and spawned seeds;
- a crashed worker poisons the pool, unfinished chunks are retried once on
  a fresh pool, and a second crash surfaces as ``SamplingError``;
- sample budgets and deadlines raise their dedicated errors, both on the
  engine and through the ambient ``EvaluationConfig``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import (
    DeadlineExceeded,
    SampleBudgetExceeded,
    SamplingError,
    Uncertain,
    evaluation_config,
)
from repro.core.engines import NumpyEngine, get_engine
from repro.dists import Gaussian
from repro.dists.base import Distribution
from repro.runtime.parallel import (
    MIN_CHUNK,
    ParallelEngine,
    chunk_layout,
    spawn_chunk_seeds,
)


def diamond() -> Uncertain:
    """The fig08 dependence diamond ``(y + x) + x`` over Gaussian leaves."""
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return (y + x) + x


def chunked_numpy_reference(plan, n, seed, chunk_size=None) -> np.ndarray:
    """Serial reproduction of the parallel stream: NumpyEngine chunk by chunk."""
    chunks = chunk_layout(n, chunk_size)
    seeds = spawn_chunk_seeds(np.random.default_rng(seed), len(chunks))
    inner = NumpyEngine()
    return np.concatenate(
        [
            inner.run(plan, size, np.random.default_rng(child))[plan.root_slot]
            for size, child in zip(chunks, seeds)
        ]
    )


# ---------------------------------------------------------------------------
# Crash injection.  The distribution must be picklable (it ships to workers
# inside the plan payload), so it lives at module level and its crash switch
# is a sentinel file: "once" mode deletes the sentinel before dying, so the
# retry on a fresh pool succeeds; "always" mode leaves it in place.
# ---------------------------------------------------------------------------


class CrashingGaussian(Distribution):
    def __init__(self, sentinel: str, mode: str = "once") -> None:
        self.sentinel = sentinel
        self.mode = mode

    def sample_n(self, n, rng):
        if os.path.exists(self.sentinel):
            if self.mode == "once":
                try:
                    os.unlink(self.sentinel)
                except FileNotFoundError:
                    # A sibling worker raced us to the crash; sample normally.
                    return rng.normal(0.0, 1.0, size=n)
            os._exit(1)  # hard worker death: no exception, no cleanup
        return rng.normal(0.0, 1.0, size=n)


class SleepyGaussian(Distribution):
    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def sample_n(self, n, rng):
        time.sleep(self.delay_s)
        return rng.normal(0.0, 1.0, size=n)


class TestChunkLayout:
    def test_adaptive_sizing_floors_at_min_chunk(self):
        assert chunk_layout(10) == [10]
        assert chunk_layout(MIN_CHUNK) == [MIN_CHUNK]
        assert chunk_layout(MIN_CHUNK + 1) == [MIN_CHUNK, 1]

    def test_layout_is_worker_independent(self):
        # Nothing about the layout may consult worker count: same n, same
        # layout, regardless of how the engine was configured.
        assert chunk_layout(1_000_000) == chunk_layout(1_000_000)
        assert sum(chunk_layout(1_000_000)) == 1_000_000
        assert sum(chunk_layout(123_457, 1000)) == 123_457

    def test_explicit_chunk_size(self):
        assert chunk_layout(10, 4) == [4, 4, 2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chunk_layout(0)
        with pytest.raises(ValueError):
            chunk_layout(10, 0)

    def test_spawned_seeds_are_reproducible(self):
        a = spawn_chunk_seeds(np.random.default_rng(3), 4)
        b = spawn_chunk_seeds(np.random.default_rng(3), 4)
        assert [s.generate_state(2).tolist() for s in a] == [
            s.generate_state(2).tolist() for s in b
        ]


class TestDeterminism:
    N = 20_000
    CHUNK = 1_024  # small chunks so modest n still exercises the pool

    @pytest.fixture(scope="class")
    def plan(self):
        return diamond().plan

    def run_with_workers(self, plan, k):
        engine = ParallelEngine(workers=k, chunk_size=self.CHUNK)
        try:
            values = engine.run(plan, self.N, np.random.default_rng(42))
            return values[plan.root_slot]
        finally:
            engine.shutdown()

    @pytest.mark.parametrize("k", [2, 4])
    def test_bit_identical_across_worker_counts(self, plan, k):
        serial = self.run_with_workers(plan, 1)
        parallel = self.run_with_workers(plan, k)
        assert np.array_equal(serial, parallel)

    def test_matches_chunked_numpy_reference(self, plan):
        parallel = self.run_with_workers(plan, 2)
        reference = chunked_numpy_reference(plan, self.N, 42, self.CHUNK)
        assert np.array_equal(parallel, reference)

    def test_distribution_is_correct(self, plan):
        # (y + x) + x has variance 1 + 4 = 5.
        values = self.run_with_workers(plan, 2)
        assert len(values) == self.N
        assert np.var(values) == pytest.approx(5.0, rel=0.1)
        assert np.mean(values) == pytest.approx(0.0, abs=0.1)

    def test_repeat_runs_advance_the_stream(self, plan):
        # Two batches through one generator must not repeat samples.
        engine = ParallelEngine(workers=2, chunk_size=self.CHUNK)
        try:
            rng = np.random.default_rng(7)
            first = engine.run(plan, self.N, rng)[plan.root_slot]
            second = engine.run(plan, self.N, rng)[plan.root_slot]
            assert not np.array_equal(first, second)
        finally:
            engine.shutdown()

    def test_small_batches_stay_in_process(self, plan):
        # An SPRT-sized batch is one sub-MIN_CHUNK chunk: never shipped.
        engine = ParallelEngine(workers=2)
        try:
            values = engine.run(plan, 10, np.random.default_rng(0))
            assert len(values[plan.root_slot]) == 10
            assert engine._executor is None  # pool never built
        finally:
            engine.shutdown()


class TestUnpicklablePlans:
    def test_lambda_plan_warns_and_falls_back(self):
        from repro.dists import FunctionDistribution

        base = Uncertain(
            FunctionDistribution(
                lambda rng: rng.normal(),
                fn_n=lambda n, rng: rng.normal(0.0, 1.0, size=n),
            )
        )
        value = base + 1.0
        engine = ParallelEngine(workers=2, chunk_size=256)
        try:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                out = engine.run(value.plan, 2_000, np.random.default_rng(5))
            root = out[value.plan.root_slot]
            # The fallback keeps the sharded stream definition.
            reference = chunked_numpy_reference(value.plan, 2_000, 5, 256)
            assert np.array_equal(root, reference)
        finally:
            engine.shutdown()


class TestCrashRecovery:
    def test_crashed_chunks_are_retried_on_a_fresh_pool(self, tmp_path):
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        value = Uncertain(CrashingGaussian(str(sentinel), mode="once")) + 0.0
        engine = ParallelEngine(workers=2, chunk_size=512, mp_context="fork")
        try:
            out = engine.run(value.plan, 4_096, np.random.default_rng(11))
            root = out[value.plan.root_slot]
            assert len(root) == 4_096
            assert not sentinel.exists()
            # Retried chunks reuse their original seeds, so the recovered
            # batch still equals the serial reference.
            assert np.array_equal(
                root, chunked_numpy_reference(value.plan, 4_096, 11, 512)
            )
        finally:
            engine.shutdown()

    def test_persistent_crash_raises_sampling_error(self, tmp_path):
        sentinel = tmp_path / "crash-always"
        sentinel.touch()
        value = Uncertain(CrashingGaussian(str(sentinel), mode="always")) + 0.0
        engine = ParallelEngine(workers=2, chunk_size=512, mp_context="fork")
        try:
            with pytest.raises(SamplingError, match="crashed the worker pool"):
                engine.run(value.plan, 4_096, np.random.default_rng(11))
        finally:
            engine.shutdown()
            sentinel.unlink(missing_ok=True)


class TestBudgetsAndDeadlines:
    def test_engine_sample_budget(self):
        plan = diamond().plan
        engine = ParallelEngine(workers=1, sample_budget=1_000)
        try:
            engine.run(plan, 800, np.random.default_rng(0))
            with pytest.raises(SampleBudgetExceeded):
                engine.run(plan, 300, np.random.default_rng(0))
            assert engine.samples_drawn == 800
        finally:
            engine.shutdown()

    def test_engine_deadline(self):
        value = Uncertain(SleepyGaussian(0.4)) + 0.0
        engine = ParallelEngine(
            workers=2, chunk_size=512, deadline=0.05, mp_context="fork"
        )
        try:
            with pytest.raises(DeadlineExceeded):
                engine.run(value.plan, 4_096, np.random.default_rng(0))
        finally:
            engine.shutdown()

    def test_config_sample_budget_applies_to_every_draw_path(self):
        value = diamond()
        with evaluation_config(sample_budget=1_000):
            value.samples(900)
            with pytest.raises(SampleBudgetExceeded):
                value.samples(200)

    def test_config_deadline_bounds_the_block(self):
        value = diamond()
        with evaluation_config(deadline=1e-6):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                value.samples(10)


class TestPlanPayloadProtocol:
    """Structural-hash-keyed worker caches (docs/runtime.md).

    A plan ships to the pool once per structural shape; subsequent
    batches — including batches of *different* plan objects with the
    same shape — send only the key.  A worker that misses its cache
    raises ``PlanPayloadMissing`` and the parent re-sends transparently.
    """

    def test_payload_key_is_the_structural_hash(self):
        engine = ParallelEngine(workers=2)
        try:
            plan = diamond().plan
            key, data = engine._payload_for(plan)
            assert key == plan.structural_hash
            assert isinstance(data, bytes)
        finally:
            engine.shutdown()

    def test_opaque_plan_gets_a_throwaway_key(self):
        engine = ParallelEngine(workers=2)
        try:
            value = diamond().map(np.sqrt, vectorized=True).map(
                np.abs, vectorized=True
            )
            opaque = Uncertain(
                Gaussian(0.0, 1.0)
            ).map(lambda v: v, vectorized=True)
            with pytest.warns(RuntimeWarning, match="not picklable"):
                key, data = engine._payload_for(opaque.plan)
            assert key.startswith("plan-")
            assert data is None
            assert value.plan.structural_hash is not None
        finally:
            engine.shutdown()

    def test_run_chunk_raises_on_worker_cache_miss(self):
        from repro.runtime import parallel as par

        par._worker_plans.pop("no-such-key", None)
        with pytest.raises(par.PlanPayloadMissing):
            par._run_chunk("no-such-key", None, 8, 0, "numpy")

    def test_payload_ships_once_then_descriptors_only(self):
        from repro.runtime.metrics import RuntimeMetrics

        metrics = RuntimeMetrics()
        plan = diamond().plan
        engine = ParallelEngine(workers=2, chunk_size=512)
        try:
            with evaluation_config(metrics=metrics):
                first = engine.run(plan, 2_048, np.random.default_rng(1))
                assert plan.structural_hash in engine._shipped
                second = engine.run(plan, 2_048, np.random.default_rng(1))
            assert np.array_equal(
                first[plan.root_slot], second[plan.root_slot]
            )
            snap = metrics.snapshot()["parallel"]
            assert snap["payload_skips"] >= 4  # every chunk of run two
        finally:
            engine.shutdown()

    def test_isomorphic_plans_share_one_shipment(self):
        from repro.runtime.metrics import RuntimeMetrics

        metrics = RuntimeMetrics()
        p1 = diamond().plan
        p2 = diamond().plan
        assert p1 is not p2
        assert p1.structural_hash == p2.structural_hash
        engine = ParallelEngine(workers=2, chunk_size=512)
        try:
            with evaluation_config(metrics=metrics):
                a = engine.run(p1, 2_048, np.random.default_rng(9))
                b = engine.run(p2, 2_048, np.random.default_rng(9))
            assert np.array_equal(a[p1.root_slot], b[p2.root_slot])
            assert len(engine._shipped) == 1
            assert metrics.snapshot()["parallel"]["payload_skips"] >= 4
        finally:
            engine.shutdown()

    def test_cache_miss_is_resent_transparently(self):
        from repro.runtime.metrics import RuntimeMetrics

        metrics = RuntimeMetrics()
        plan = diamond().plan
        engine = ParallelEngine(workers=2, chunk_size=512)
        try:
            # Pretend the shape already shipped: the first dispatch sends
            # bare descriptors, every fresh worker misses, and the engine
            # must recover by re-sending the payload — same stream.
            engine._shipped.add(plan.structural_hash)
            with evaluation_config(metrics=metrics):
                out = engine.run(plan, 2_048, np.random.default_rng(13))
            assert np.array_equal(
                out[plan.root_slot],
                chunked_numpy_reference(plan, 2_048, 13, 512),
            )
            assert metrics.snapshot()["parallel"]["payload_misses"] >= 1
        finally:
            engine.shutdown()

    def test_shutdown_forgets_shipped_shapes(self):
        plan = diamond().plan
        engine = ParallelEngine(workers=2, chunk_size=512)
        try:
            engine.run(plan, 2_048, np.random.default_rng(3))
            assert engine._shipped
        finally:
            engine.shutdown()
        assert not engine._shipped


class TestEngineSelection:
    def test_parallel_engine_is_registered(self):
        engine = get_engine("parallel")
        assert isinstance(engine, ParallelEngine)

    def test_config_engine_routes_samples_through_the_pool_model(self):
        value = diamond()
        with evaluation_config(engine="parallel", rng=np.random.default_rng(21)):
            via_config = value.samples(MIN_CHUNK + 10)
        reference = chunked_numpy_reference(value.plan, MIN_CHUNK + 10, 21)
        assert np.array_equal(via_config, reference)

    def test_per_call_engine_override(self):
        value = diamond()
        out = value.samples(MIN_CHUNK + 10, rng=33, engine="parallel")
        assert np.array_equal(
            out, chunked_numpy_reference(value.plan, MIN_CHUNK + 10, 33)
        )
