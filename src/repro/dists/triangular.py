"""Triangular distribution."""

from __future__ import annotations

import numpy as np

from repro.dists.base import Distribution, Support


class Triangular(Distribution):
    """Triangular(low, mode, high) — a simple bounded, peaked prior shape."""

    def __init__(self, low: float, mode: float, high: float) -> None:
        if not low <= mode <= high or low == high:
            raise ValueError(f"need low <= mode <= high with low < high, got {low}, {mode}, {high}")
        self.low = float(low)
        self.mode = float(mode)
        self.high = float(high)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.triangular(self.low, self.mode, self.high, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        lo, m, hi = self.low, self.mode, self.high
        span = hi - lo
        with np.errstate(divide="ignore", invalid="ignore"):
            left = 2 * (x - lo) / (span * (m - lo)) if m > lo else None
            right = 2 * (hi - x) / (span * (hi - m)) if hi > m else None
        pdf = np.zeros_like(x)
        if left is not None:
            pdf = np.where((x >= lo) & (x < m), left, pdf)
        if right is not None:
            pdf = np.where((x >= m) & (x <= hi), right, pdf)
        if m == lo:
            pdf = np.where(x == lo, 2.0 / span, pdf)
        if m == hi:
            pdf = np.where(x == hi, 2.0 / span, pdf)
        with np.errstate(divide="ignore"):
            return np.log(pdf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        lo, m, hi = self.low, self.mode, self.high
        span = hi - lo
        out = np.zeros_like(x)
        if m > lo:
            out = np.where((x > lo) & (x <= m), (x - lo) ** 2 / (span * (m - lo)), out)
        if hi > m:
            out = np.where(
                (x > m) & (x < hi), 1.0 - (hi - x) ** 2 / (span * (hi - m)), out
            )
        return np.where(x >= hi, 1.0, out)

    @property
    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    @property
    def variance(self) -> float:
        lo, m, hi = self.low, self.mode, self.high
        return (lo**2 + m**2 + hi**2 - lo * m - lo * hi - m * hi) / 18.0

    @property
    def support(self) -> Support:
        return Support(self.low, self.high)
