"""Interval abstract interpretation over compiled evaluation plans.

Every distribution in :mod:`repro.dists` declares a closed
:class:`~repro.dists.base.Support`; every compiled
:class:`~repro.core.plan.EvaluationPlan` is a flat, topologically ordered
slot program.  Together they make a textbook abstract interpretation
possible: seed each leaf slot with its distribution's support, then push
intervals forward through one transfer function per operator symbol.  The
result is a *sound over-approximation* of every slot's reachable values —
if the abstract interpreter says slot 7 lies in ``[0, 2]``, no concrete
joint sample can ever put it outside ``[0, 2]``.

Soundness is the property the diagnostics in
:mod:`repro.analysis.diagnostics` rely on: "the divisor's interval
contains 0" is a *may* warning, while "the threshold lies outside the
operand's interval" is a *must* fact (the comparison is statically
decidable).  The property tests in ``tests/analysis/test_intervals.py``
check the envelope claim directly: sampled min/max of every op always
falls inside the inferred interval.

Precision notes:

- Shared subexpressions share slots, so ``x - x`` still infers the naive
  ``[lo-hi, hi-lo]`` rather than ``[0, 0]``: intervals are non-relational.
  That loses precision but never soundness.
- :class:`~repro.core.graph.ApplyNode` is an arbitrary lifted function;
  we fall back to top unless its label names a well-known unary function
  (``sqrt``, ``log``, ``exp``, ...) — which is exactly what
  ``lift(math.sqrt)`` produces.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import EvaluationPlan
from repro.dists.base import Support

_INF = math.inf


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed interval ``[lower, upper]`` over the extended reals.

    The abstract value of one plan slot.  ``Interval(-inf, inf)`` is top
    (no information); a point interval ``[v, v]`` is a known constant.
    Booleans embed as ``[0, 1]`` with ``[0, 0]`` = definitely false and
    ``[1, 1]`` = definitely true.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"empty interval [{self.lower}, {self.upper}]")

    # -- predicates --------------------------------------------------------

    def contains(self, x: float) -> bool:
        return self.lower <= x <= self.upper

    @property
    def contains_zero(self) -> bool:
        return self.lower <= 0.0 <= self.upper

    @property
    def is_point(self) -> bool:
        return self.lower == self.upper and math.isfinite(self.lower)

    @property
    def is_top(self) -> bool:
        return self.lower == -_INF and self.upper == _INF

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.lower) and math.isfinite(self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_support(cls, support: Support) -> "Interval":
        return cls(float(support.lower), float(support.upper))

    def to_support(self) -> Support:
        return Support(self.lower, self.upper)

    @classmethod
    def point(cls, value: float) -> "Interval":
        value = float(value)
        return cls(value, value)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (the join of the lattice)."""
        return Interval(min(self.lower, other.lower), max(self.upper, other.upper))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lower:g}, {self.upper:g}]"


TOP = Interval(-_INF, _INF)
TRUE = Interval(1.0, 1.0)
FALSE = Interval(0.0, 0.0)
BOOL = Interval(0.0, 1.0)


# ---------------------------------------------------------------------------
# Extended-real helpers.  IEEE ``inf - inf`` and ``0 * inf`` are NaN, which
# would poison the analysis; interval arithmetic instead resolves them to
# the conservative bound (and ``0 * inf = 0``, the standard convention).
# ---------------------------------------------------------------------------


def _add(x: float, y: float, toward: float) -> float:
    """``x + y`` resolving ``inf + -inf`` toward the conservative bound."""
    if math.isinf(x) and math.isinf(y) and x != y:
        return toward
    return x + y


def _mul(x: float, y: float) -> float:
    """``x * y`` with the interval convention ``0 * inf = 0``."""
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def _div(x: float, y: float) -> float:
    """``x / y`` for a divisor interval that excludes 0 (``y != 0``)."""
    if math.isinf(x) and math.isinf(y):
        # inf/inf could be anything of that sign; the caller widens to top
        # via the NaN check below, so return NaN deliberately.
        return math.nan
    if math.isinf(y):
        return 0.0
    return x / y


def _corners(vals: list[float]) -> Interval:
    """Interval hull of candidate extremal values, widening on NaN."""
    if any(math.isnan(v) for v in vals):
        return TOP
    return Interval(min(vals), max(vals))


# ---------------------------------------------------------------------------
# Binary transfer functions, keyed by the operator symbol that
# ``Uncertain``'s dunders record on the node label.
# ---------------------------------------------------------------------------


def _t_add(a: Interval, b: Interval) -> Interval:
    return Interval(_add(a.lower, b.lower, -_INF), _add(a.upper, b.upper, _INF))


def _t_sub(a: Interval, b: Interval) -> Interval:
    return Interval(_add(a.lower, -b.upper, -_INF), _add(a.upper, -b.lower, _INF))


def _t_mul(a: Interval, b: Interval) -> Interval:
    return _corners(
        [_mul(a.lower, b.lower), _mul(a.lower, b.upper),
         _mul(a.upper, b.lower), _mul(a.upper, b.upper)]
    )


def _t_truediv(a: Interval, b: Interval) -> Interval:
    if b.contains_zero:
        # Division may blow up anywhere; UNC101 reports it, we stay sound.
        return TOP
    return _corners(
        [_div(a.lower, b.lower), _div(a.lower, b.upper),
         _div(a.upper, b.lower), _div(a.upper, b.upper)]
    )


def _floor(x: float) -> float:
    return x if math.isinf(x) else float(math.floor(x))


def _t_floordiv(a: Interval, b: Interval) -> Interval:
    quotient = _t_truediv(a, b)
    if quotient.is_top:
        return TOP
    return Interval(_floor(quotient.lower), _floor(quotient.upper))


def _t_mod(a: Interval, b: Interval) -> Interval:
    if b.contains_zero:
        return TOP
    # Python/numpy ``%`` takes the divisor's sign and |result| < |divisor|.
    if b.lower > 0:
        return Interval(0.0, b.upper)
    return Interval(b.lower, 0.0)


def _is_integer_point(b: Interval) -> bool:
    return b.is_point and float(b.lower).is_integer()


def _pow_corner(base: float, exp: float) -> float:
    try:
        result = base ** exp
    except (OverflowError, ZeroDivisionError):
        return _INF
    if isinstance(result, complex):
        return math.nan
    return float(result)


def _t_pow(a: Interval, b: Interval) -> Interval:
    if a.lower >= 0:
        corners = [
            _pow_corner(a.lower, b.lower), _pow_corner(a.lower, b.upper),
            _pow_corner(a.upper, b.lower), _pow_corner(a.upper, b.upper),
        ]
        # 0**negative diverges; x**y for x in (0,1) peaks at the exponent
        # extremes already covered by the corners.  1 is an interior
        # extremum when the exponent spans a sign change.
        if b.lower < 0 < b.upper:
            corners.append(1.0)
        if a.lower == 0 and b.lower < 0:
            corners.append(_INF)
        return _corners(corners)
    if _is_integer_point(b):
        p = float(b.lower)
        corners = [_pow_corner(a.lower, p), _pow_corner(a.upper, p)]
        if p >= 0 and p % 2 == 0 and a.contains_zero:
            corners.append(0.0)
        if p < 0:
            # Negative base to a negative power: poles only at 0, which a
            # negative-crossing base interval contains.
            if a.contains_zero:
                return TOP
            corners = [_pow_corner(a.lower, p), _pow_corner(a.upper, p)]
        return _corners(corners)
    # Negative base with a non-integer (or uncertain) exponent: NaN-land.
    # UNC102 reports it; abstractly we know nothing.
    return TOP


def _definitely(result: bool) -> Interval:
    return TRUE if result else FALSE


def _t_lt(a: Interval, b: Interval) -> Interval:
    if a.upper < b.lower:
        return TRUE
    if a.lower >= b.upper:
        return FALSE
    return BOOL


def _t_le(a: Interval, b: Interval) -> Interval:
    if a.upper <= b.lower:
        return TRUE
    if a.lower > b.upper:
        return FALSE
    return BOOL


def _t_gt(a: Interval, b: Interval) -> Interval:
    return _t_lt(b, a)


def _t_ge(a: Interval, b: Interval) -> Interval:
    return _t_le(b, a)


def _t_eq(a: Interval, b: Interval) -> Interval:
    if a.is_point and b.is_point and a.lower == b.lower:
        return TRUE
    if a.upper < b.lower or b.upper < a.lower:
        return FALSE
    return BOOL


def _t_ne(a: Interval, b: Interval) -> Interval:
    result = _t_eq(a, b)
    if result is TRUE:
        return FALSE
    if result is FALSE:
        return TRUE
    return BOOL


def _truthy(a: Interval) -> bool | None:
    """Definite truth value of an interval, or None if undecided."""
    if not a.contains_zero:
        return True
    if a.lower == 0.0 == a.upper:
        return False
    return None


def _t_and(a: Interval, b: Interval) -> Interval:
    ta, tb = _truthy(a), _truthy(b)
    if ta is False or tb is False:
        return FALSE
    if ta is True and tb is True:
        return TRUE
    return BOOL


def _t_or(a: Interval, b: Interval) -> Interval:
    ta, tb = _truthy(a), _truthy(b)
    if ta is True or tb is True:
        return TRUE
    if ta is False and tb is False:
        return FALSE
    return BOOL


def _t_xor(a: Interval, b: Interval) -> Interval:
    ta, tb = _truthy(a), _truthy(b)
    if ta is None or tb is None:
        return BOOL
    return _definitely(ta != tb)


BINARY_TRANSFER: dict[str, Callable[[Interval, Interval], Interval]] = {
    "+": _t_add,
    "-": _t_sub,
    "*": _t_mul,
    "/": _t_truediv,
    "//": _t_floordiv,
    "%": _t_mod,
    "**": _t_pow,
    "<": _t_lt,
    "<=": _t_le,
    ">": _t_gt,
    ">=": _t_ge,
    "==": _t_eq,
    "!=": _t_ne,
    "and": _t_and,
    "or": _t_or,
    "xor": _t_xor,
}

#: Comparison symbols — the ops whose result is evidence (UncertainBool).
COMPARISON_SYMBOLS = frozenset({"<", "<=", ">", ">=", "==", "!="})

#: Division-like symbols whose right operand must exclude zero.
DIVISION_SYMBOLS = frozenset({"/", "//", "%"})


# ---------------------------------------------------------------------------
# Unary transfer functions.  Keyed by symbol; ``lift(math.sqrt)`` builds an
# ApplyNode labelled "sqrt", so the same table serves recognised applies.
# ---------------------------------------------------------------------------


def _t_neg(a: Interval) -> Interval:
    return Interval(-a.upper, -a.lower)


def _t_abs(a: Interval) -> Interval:
    if a.lower >= 0:
        return a
    if a.upper <= 0:
        return _t_neg(a)
    return Interval(0.0, max(-a.lower, a.upper))


def _t_not(a: Interval) -> Interval:
    t = _truthy(a)
    if t is None:
        return BOOL
    return _definitely(not t)


def _t_sqrt(a: Interval) -> Interval:
    # Operand values below 0 yield NaN at runtime; the abstract result
    # describes the non-NaN outcomes (UNC102 reports the violation).
    lo = max(a.lower, 0.0)
    hi = max(a.upper, 0.0)
    return Interval(math.sqrt(lo), _INF if math.isinf(hi) else math.sqrt(hi))


def _t_log(a: Interval) -> Interval:
    lo = -_INF if a.lower <= 0 else math.log(a.lower)
    hi = _INF if math.isinf(a.upper) else (math.log(a.upper) if a.upper > 0 else -_INF)
    if hi < lo:
        return TOP
    return Interval(lo, hi)


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return _INF


def _t_exp(a: Interval) -> Interval:
    lo = 0.0 if a.lower == -_INF else _safe_exp(a.lower)
    hi = _INF if a.upper == _INF else _safe_exp(a.upper)
    return Interval(lo, hi)


def _t_sin(a: Interval) -> Interval:
    # Phase tracking is not worth the complexity; the range bound alone
    # already lets downstream ops stay finite.
    return Interval(-1.0, 1.0)


def _t_floor_u(a: Interval) -> Interval:
    return Interval(_floor(a.lower), _floor(a.upper))


def _ceil(x: float) -> float:
    return x if math.isinf(x) else float(math.ceil(x))


def _t_ceil_u(a: Interval) -> Interval:
    return Interval(_ceil(a.lower), _ceil(a.upper))


UNARY_TRANSFER: dict[str, Callable[[Interval], Interval]] = {
    "neg": _t_neg,
    "abs": _t_abs,
    "absolute": _t_abs,  # np.abs.__name__
    "fabs": _t_abs,
    "not": _t_not,
    "sqrt": _t_sqrt,
    "log": _t_log,
    "log2": lambda a: _scale_log(a, math.log(2.0)),
    "log10": lambda a: _scale_log(a, math.log(10.0)),
    "log1p": lambda a: _t_log(_t_add(a, Interval(1.0, 1.0))),
    "exp": _t_exp,
    "sin": _t_sin,
    "cos": _t_sin,
    "floor": _t_floor_u,
    "ceil": _t_ceil_u,
}


def _scale_log(a: Interval, base_log: float) -> Interval:
    inner = _t_log(a)
    if inner.is_top:
        return TOP
    return Interval(inner.lower / base_log, inner.upper / base_log)


#: Symbols with a restricted real domain, mapped to a predicate over the
#: operand interval that is True when the interval *escapes* the domain
#: (so runtime samples can produce NaN/-inf).  Used by rule UNC102.
DOMAIN_BOUNDARIES: dict[str, Callable[[Interval], bool]] = {
    "sqrt": lambda a: a.lower < 0,
    "log": lambda a: a.lower <= 0,
    "log2": lambda a: a.lower <= 0,
    "log10": lambda a: a.lower <= 0,
    "log1p": lambda a: a.lower <= -1,
}


# ---------------------------------------------------------------------------
# The abstract interpreter proper: one forward pass over the plan.
# ---------------------------------------------------------------------------


def _leaf_interval(node: LeafNode) -> Interval:
    try:
        support = node.dist.support
    except NotImplementedError:
        return TOP
    return Interval.from_support(support)


def _point_interval(node: PointMassNode) -> Interval:
    value = node.value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, (int, float)) and math.isfinite(float(value)):
        return Interval.point(float(value))
    return TOP


def infer_intervals(plan: EvaluationPlan) -> list[Interval]:
    """Infer one sound interval per plan slot (indexed like ``plan.steps``).

    Leaves are seeded from ``Distribution.support`` / point-mass values;
    inner slots apply the transfer function matching their operator
    symbol; anything unrecognised (``ApplyNode`` with an unknown label,
    exotic node classes) widens to top.
    """
    intervals: list[Interval] = [TOP] * len(plan.steps)
    for step in plan.steps:
        node = step.node
        if isinstance(node, LeafNode):
            intervals[step.slot] = _leaf_interval(node)
        elif isinstance(node, PointMassNode):
            intervals[step.slot] = _point_interval(node)
        elif isinstance(node, BinaryOpNode):
            transfer = BINARY_TRANSFER.get(node.label)
            if transfer is not None:
                a, b = (intervals[s] for s in step.parent_slots)
                intervals[step.slot] = transfer(a, b)
        elif isinstance(node, (UnaryOpNode, ApplyNode)) and len(step.parent_slots) == 1:
            transfer = UNARY_TRANSFER.get(node.label)
            if transfer is not None:
                intervals[step.slot] = transfer(intervals[step.parent_slots[0]])
        # Everything else stays top.
    return intervals
