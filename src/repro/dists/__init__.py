"""Probability distributions represented as sampling functions.

Section 3.2 of the paper argues that exact density algebra is impractical
under computation and that many real error models have no closed form, so
Uncertain<T> represents every distribution through an *approximate sampling
function*: a zero-argument procedure that returns a fresh random draw on each
invocation (Park et al., POPL 2005).

This package is the expert-developer substrate: each class couples a
vectorised sampling function with whatever analytic structure the
distribution has (density, CDF, moments), because priors (Section 3.5) and
the BayesLife case study (Section 5.2) need densities as well as samples.
"""

from repro.dists.base import Distribution, Support
from repro.dists.gaussian import Gaussian, MultivariateGaussian, TruncatedGaussian
from repro.dists.uniform import DiscreteUniform, Uniform
from repro.dists.bernoulli import Bernoulli, Binomial
from repro.dists.rayleigh import Rayleigh
from repro.dists.exponential import Exponential, Gamma
from repro.dists.beta import Beta
from repro.dists.poisson import Poisson
from repro.dists.categorical import Categorical, PointMass
from repro.dists.triangular import Triangular
from repro.dists.lognormal import LogNormal
from repro.dists.studentt import StudentT
from repro.dists.empirical import Empirical
from repro.dists.mixture import Mixture
from repro.dists.kde import KernelDensity
from repro.dists.sampling_function import FunctionDistribution
from repro.dists.weibull import Weibull
from repro.dists.laplace import Laplace
from repro.dists.cauchy import Cauchy
from repro.dists.vonmises import VonMises

__all__ = [
    "Distribution",
    "Support",
    "Gaussian",
    "TruncatedGaussian",
    "MultivariateGaussian",
    "Uniform",
    "DiscreteUniform",
    "Bernoulli",
    "Binomial",
    "Rayleigh",
    "Exponential",
    "Gamma",
    "Beta",
    "Poisson",
    "Categorical",
    "PointMass",
    "Triangular",
    "LogNormal",
    "StudentT",
    "Empirical",
    "Mixture",
    "KernelDensity",
    "FunctionDistribution",
    "Weibull",
    "Laplace",
    "Cauchy",
    "VonMises",
]
