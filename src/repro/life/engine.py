"""The exact Game of Life — ground truth for the sensor experiments.

Cells live on a bounded grid (no wraparound: the paper notes corner and
edge cells have fewer sensors).  The rules, per Section 5.2:

1. A live cell with 2 or 3 live neighbours lives.
2. A live cell with fewer than 2 live neighbours dies (underpopulation).
3. A live cell with more than 3 live neighbours dies (overcrowding).
4. A dead cell with exactly 3 live neighbours becomes live (reproduction).
"""

from __future__ import annotations

import numpy as np

from repro.rng import ensure_rng

Board = np.ndarray  # 2-D bool array


def random_board(
    rows: int = 20, cols: int = 20, density: float = 0.35, rng=None
) -> Board:
    """Random initial board (the paper randomly initialises a 20x20 grid)."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"board must be non-empty, got {rows}x{cols}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = ensure_rng(rng)
    return rng.random((rows, cols)) < density


def neighbor_counts(board: Board) -> np.ndarray:
    """Count live neighbours of every cell (bounded grid, 8-neighbourhood)."""
    padded = np.zeros((board.shape[0] + 2, board.shape[1] + 2), dtype=np.int64)
    padded[1:-1, 1:-1] = board.astype(np.int64)
    counts = (
        padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
    )
    return counts


def true_decision(is_alive: bool, live_neighbors: int) -> bool:
    """The exact rule outcome for one cell."""
    if is_alive:
        return 2 <= live_neighbors <= 3
    return live_neighbors == 3


def step_board(board: Board) -> Board:
    """One exact generation."""
    counts = neighbor_counts(board)
    survive = board & ((counts == 2) | (counts == 3))
    born = ~board & (counts == 3)
    return survive | born


def neighbor_states(board: Board, row: int, col: int) -> np.ndarray:
    """True binary states of a cell's neighbours (3-8 of them on a bounded
    grid), as the per-sensor ground truth."""
    rows, cols = board.shape
    states = []
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            r, c = row + dr, col + dc
            if 0 <= r < rows and 0 <= c < cols:
                states.append(1.0 if board[r, c] else 0.0)
    return np.asarray(states)
