"""Figure 1 bench: a single sample is a poor estimate of a distribution."""

from benchmarks.conftest import run_and_report


def test_fig01_sample_vs_distribution(benchmark):
    run_and_report(benchmark, "fig01", fast=True)
