"""Figure 6 bench: computation compounds uncertainty."""

from benchmarks.conftest import run_and_report


def test_fig06_compounding(benchmark):
    run_and_report(benchmark, "fig06", fast=True)
