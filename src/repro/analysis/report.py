"""Text and JSON rendering of analysis diagnostics.

Both passes produce :class:`~repro.analysis.diagnostics.Diagnostic`
records; this module turns them into the two consumer formats — a
human-readable listing (one line per finding, ``path:line:col`` prefixes
for lints, slot references for graph findings) and a JSON document stable
enough for CI artifacts.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Diagnostic]) -> str:
    """One line per finding plus a closing summary line."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.severity}: {finding.message}"
        for finding in findings
    ]
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    if findings:
        summary = ", ".join(
            f"{counts[sev]} {sev}(s)" for sev in ("error", "warning", "info")
            if sev in counts
        )
        lines.append(f"found {len(findings)} issue(s): {summary}")
    else:
        lines.append("no issues found")
    return "\n".join(lines)


def render_json(findings: Iterable[Diagnostic], **meta) -> str:
    """JSON document: ``{"version": 1, "findings": [...], ...meta}``."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.as_dict() for finding in findings],
    }
    payload.update(meta)
    return json.dumps(payload, indent=2, sort_keys=True)
