"""Overhead benchmark: the resilience layer must be ~free when quiet.

The instrumented ``ExecutionEngine.sample`` path now carries the
numerical-health hook (``on_nonfinite``).  Under default policies
(``"propagate"``, no metrics sink, no tracer) it takes the fast exit:
one config read, zero per-row work.  This bench times that path against
the raw ``engine.run`` + root-slot read on the fig08 dependence diamond
and asserts the median overhead stays under 5%, writing the honest
numbers to ``BENCH_resilience.json`` at the repo root either way.

Medians over many repeats, not minima: the claim is about the typical
draw, and the per-call cost being measured is small relative to timer
jitter.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host

from repro import Uncertain
from repro.core.engines import NumpyEngine
from repro.dists import Gaussian

N = 100_000
REPEATS = 31
OVERHEAD_BUDGET = 0.05
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_resilience.json"


def _fig08_plan():
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return ((y + x) + x).plan


def _median_time(fn) -> float:
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_health_hook_overhead_is_negligible(benchmark):
    plan = _fig08_plan()
    engine = NumpyEngine()

    def raw():
        engine.run(plan, N, np.random.default_rng(0))[plan.root_slot]

    def instrumented():
        engine.sample(plan, N, np.random.default_rng(0))

    # Same samples either way: the hook must not perturb the stream.
    assert np.array_equal(
        engine.run(plan, N, np.random.default_rng(7))[plan.root_slot],
        engine.sample(plan, N, np.random.default_rng(7)),
    )

    raw(), instrumented()  # warm-up: numpy buffers, config cache
    raw_s = _median_time(raw)
    instrumented_s = benchmark.pedantic(
        lambda: _median_time(instrumented), rounds=1, iterations=1
    )

    overhead = instrumented_s / raw_s - 1.0
    result = {
        "workload": {"plan": "fig08 (y + x) + x", "n": N, "repeats": REPEATS},
        "policies": {"on_nonfinite": "propagate", "metrics": None, "tracer": None},
        "run_seconds": raw_s,
        "sample_seconds": instrumented_s,
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "within_budget": bool(overhead < OVERHEAD_BUDGET),
    }
    stamp_host(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result, indent=2))

    assert overhead < OVERHEAD_BUDGET, (
        f"default-policy sample path is {overhead:.1%} slower than raw run "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
