"""Laplace (double-exponential) distribution — heavy-ish tailed noise."""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, REAL_LINE, Support


class Laplace(Distribution):
    """Laplace(mu, b): density (1/2b) exp(-|x - mu| / b)."""

    def __init__(self, mu: float, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.mu = float(mu)
        self.scale = float(scale)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.laplace(self.mu, self.scale, size=n)

    def log_pdf(self, x):
        z = np.abs(np.asarray(x, dtype=float) - self.mu) / self.scale
        return -z - math.log(2.0 * self.scale)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.scale
        return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return 2.0 * self.scale**2

    @property
    def support(self) -> Support:
        return REAL_LINE
