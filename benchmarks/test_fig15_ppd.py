"""Figure 15 bench: the posterior predictive distribution for Sobel."""

from benchmarks.conftest import run_and_report


def test_fig15_ppd(benchmark):
    run_and_report(benchmark, "fig15", fast=True)
