"""Tests for free-running noisy Life dynamics."""

import numpy as np

from repro.life.dynamics import (
    DivergenceTrace,
    compare_free_dynamics,
    run_free_dynamics,
    step_noisy_board,
)
from repro.life.engine import random_board, step_board
from repro.life.variants import BayesLife, NaiveLife
from repro.rng import default_rng


class TestStepNoisyBoard:
    def test_zero_noise_matches_exact(self):
        from repro.core.conditionals import evaluation_config

        board = random_board(8, 8, rng=default_rng(0))
        with evaluation_config(rng=default_rng(1)):
            noisy = step_noisy_board(board, NaiveLife(0.0), default_rng(2))
        assert np.array_equal(noisy, step_board(board))

    def test_shape_preserved(self):
        from repro.core.conditionals import evaluation_config

        board = random_board(5, 7, rng=default_rng(3))
        with evaluation_config(rng=default_rng(4)):
            noisy = step_noisy_board(board, NaiveLife(0.2), default_rng(5))
        assert noisy.shape == (5, 7)


class TestRunFreeDynamics:
    def test_trace_fields(self):
        trace = run_free_dynamics(
            NaiveLife(0.2), 0.2, rows=6, cols=6, generations=4, rng=default_rng(6)
        )
        assert isinstance(trace, DivergenceTrace)
        assert len(trace.disagreement) == 4
        assert trace.variant == "NaiveLife"
        assert np.all(trace.disagreement >= 0) and np.all(trace.disagreement <= 1)

    def test_zero_noise_never_diverges(self):
        trace = run_free_dynamics(
            NaiveLife(0.0), 0.0, rows=6, cols=6, generations=5, rng=default_rng(7)
        )
        assert trace.final_disagreement == 0.0
        assert trace.generations_until(0.01) == 5

    def test_noisy_naive_diverges(self):
        trace = run_free_dynamics(
            NaiveLife(0.3), 0.3, rows=8, cols=8, generations=6, rng=default_rng(8)
        )
        assert trace.final_disagreement > 0.05

    def test_generations_until(self):
        trace = DivergenceTrace(
            "x", 0.1, np.array([0.0, 0.02, 0.3]), np.zeros(3), np.zeros(3)
        )
        assert trace.generations_until(0.1) == 2
        assert trace.generations_until(0.5) == 3


class TestCompareFreeDynamics:
    def test_bayes_outlasts_naive(self):
        traces = compare_free_dynamics(
            0.2,
            variant_factories=[NaiveLife, BayesLife],
            rng=default_rng(9),
            rows=8, cols=8, generations=5, max_samples=200,
        )
        naive, bayes = traces
        # The compounding-error hypothesis: Bayes stays pinned to truth
        # longer than Naive from the identical seed board.
        assert bayes.final_disagreement <= naive.final_disagreement
        assert bayes.generations_until(0.05) >= naive.generations_until(0.05)

    def test_same_seed_same_truth(self):
        traces = compare_free_dynamics(
            0.1,
            variant_factories=[NaiveLife, BayesLife],
            rng=default_rng(10),
            rows=6, cols=6, generations=3, max_samples=200,
        )
        assert np.array_equal(traces[0].population_true, traces[1].population_true)
