"""Extension bench: particle-filter sensor fusion."""

from benchmarks.conftest import run_and_report


def test_ext_fusion(benchmark):
    run_and_report(benchmark, "ext_fusion", fast=True)
