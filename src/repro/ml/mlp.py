"""A small multilayer perceptron with backpropagation, from scratch.

Parrot's Sobel benchmark uses a 9-8-1 topology; this implementation keeps
weights accessible as a single flat vector because Hamiltonian Monte Carlo
(:mod:`repro.ml.hmc`) treats the network as a point in weight space and
needs ``grad U(w)`` for arbitrary ``w``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.rng import ensure_rng


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(activation: np.ndarray) -> np.ndarray:
    return 1.0 - activation**2


class MLP:
    """Fully connected network with tanh hidden layers and linear output.

    Weights are stored as a flat vector; :meth:`unpack` views it as per-layer
    matrices.  All computation is vectorised over example batches.
    """

    def __init__(self, sizes: Sequence[int], rng=None) -> None:
        if len(sizes) < 2:
            raise ValueError(f"need at least input and output sizes, got {sizes}")
        if any(s <= 0 for s in sizes):
            raise ValueError(f"layer sizes must be positive, got {sizes}")
        self.sizes = tuple(int(s) for s in sizes)
        self._shapes = [
            ((self.sizes[i], self.sizes[i + 1]), (self.sizes[i + 1],))
            for i in range(len(self.sizes) - 1)
        ]
        self.n_params = sum(w[0] * w[1] + b[0] for w, b in self._shapes)
        rng = ensure_rng(rng)
        # Xavier initialisation.
        chunks = []
        for (w_shape, b_shape) in self._shapes:
            scale = np.sqrt(2.0 / (w_shape[0] + w_shape[1]))
            chunks.append(rng.normal(0.0, scale, size=w_shape).ravel())
            chunks.append(np.zeros(b_shape))
        self.weights = np.concatenate(chunks)

    def unpack(self, w: np.ndarray | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
        """View a flat weight vector as [(W1, b1), (W2, b2), ...]."""
        w = self.weights if w is None else w
        if w.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} parameters, got {w.shape}")
        layers = []
        offset = 0
        for (w_shape, b_shape) in self._shapes:
            size = w_shape[0] * w_shape[1]
            mat = w[offset : offset + size].reshape(w_shape)
            offset += size
            bias = w[offset : offset + b_shape[0]]
            offset += b_shape[0]
            layers.append((mat, bias))
        return layers

    def forward(self, x: np.ndarray, w: np.ndarray | None = None) -> np.ndarray:
        """Predict outputs for a batch ``x`` of shape (n, in_dim).

        Returns shape (n,) when the output layer has one unit, else
        (n, out_dim).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        a = x
        layers = self.unpack(w)
        for i, (mat, bias) in enumerate(layers):
            z = a @ mat + bias
            a = z if i == len(layers) - 1 else _tanh(z)
        return a[:, 0] if a.shape[1] == 1 else a

    def forward_backward(
        self,
        x: np.ndarray,
        t: np.ndarray,
        w: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        """Sum-of-squares loss and its gradient w.r.t. the flat weights.

        Loss is ``0.5 * sum((y - t)^2)`` over the batch (un-normalised, as
        the HMC potential requires; divide by ``len(x)`` for a mean loss).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        t = np.asarray(t, dtype=float).reshape(len(x), -1)
        layers = self.unpack(w)

        activations = [x]
        a = x
        for i, (mat, bias) in enumerate(layers):
            z = a @ mat + bias
            a = z if i == len(layers) - 1 else _tanh(z)
            activations.append(a)

        y = activations[-1]
        diff = y - t
        loss = 0.5 * float(np.sum(diff**2))

        grads: list[np.ndarray] = []
        delta = diff  # linear output layer
        for i in reversed(range(len(layers))):
            a_prev = activations[i]
            grad_w = a_prev.T @ delta
            grad_b = delta.sum(axis=0)
            grads.append(grad_b)
            grads.append(grad_w.ravel())
            if i > 0:
                mat, _ = layers[i]
                delta = (delta @ mat.T) * _tanh_grad(activations[i])
        grads.reverse()
        return loss, np.concatenate([g.ravel() for g in grads])

    def train_sgd(
        self,
        x: np.ndarray,
        t: np.ndarray,
        epochs: int = 200,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
        rng=None,
    ) -> list[float]:
        """Minibatch SGD with momentum; returns per-epoch mean losses."""
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        t = np.asarray(t, dtype=float)
        rng = ensure_rng(rng)
        velocity = np.zeros_like(self.weights)
        history = []
        n = len(x)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                loss, grad = self.forward_backward(x[idx], t[idx])
                grad = grad / len(idx) + weight_decay * self.weights
                velocity = momentum * velocity - learning_rate * grad
                self.weights = self.weights + velocity
                epoch_loss += loss
            history.append(epoch_loss / n)
        return history

    def rmse(self, x: np.ndarray, t: np.ndarray, w: np.ndarray | None = None) -> float:
        """Root-mean-square prediction error (the paper reports 3.4% for
        Parrot's Sobel approximation)."""
        y = self.forward(x, w)
        t = np.asarray(t, dtype=float).reshape(y.shape)
        return float(np.sqrt(np.mean((y - t) ** 2)))
