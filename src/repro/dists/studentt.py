"""Student's t distribution — heavy-tailed error model."""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

from repro.dists.base import Distribution, REAL_LINE, Support


class StudentT(Distribution):
    """Student-t with ``df`` degrees of freedom, location and scale.

    Useful as a robust alternative to Gaussian sensor noise; heavy tails
    stress the SPRT's sample-size adaptation in tests.
    """

    def __init__(self, df: float, loc: float = 0.0, scale: float = 1.0) -> None:
        if df <= 0:
            raise ValueError(f"df must be positive, got {df}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.df = float(df)
        self.loc = float(loc)
        self.scale = float(scale)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.loc + self.scale * rng.standard_t(self.df, size=n)

    def log_pdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / self.scale
        df = self.df
        return (
            special.gammaln((df + 1) / 2)
            - special.gammaln(df / 2)
            - 0.5 * math.log(df * math.pi)
            - math.log(self.scale)
            - (df + 1) / 2 * np.log1p(z * z / df)
        )

    def cdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / self.scale
        return stats.t.cdf(z, self.df)

    @property
    def mean(self) -> float:
        if self.df <= 1:
            raise NotImplementedError("mean undefined for df <= 1")
        return self.loc

    @property
    def variance(self) -> float:
        if self.df <= 2:
            raise NotImplementedError("variance undefined for df <= 2")
        return self.scale**2 * self.df / (self.df - 2)

    @property
    def support(self) -> Support:
        return REAL_LINE
