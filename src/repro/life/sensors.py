"""Noisy sensors for the Game of Life (Section 5.2).

Each cell senses each neighbour through a sensor returning the neighbour's
binary state plus zero-mean Gaussian noise ``N(0, sigma)``.  Three sensing
strategies:

- :func:`noisy_sensor_readings` — one raw sample per sensor (NaiveLife).
- :func:`sensor_sum` — each sensor as an ``Uncertain`` leaf, summed with the
  overloaded ``+`` (SensorLife; the paper's ``CountLiveNeighbors``).
- :func:`corrected_sensor_sum` — BayesLife's ``SenseNeighborFixed``: each
  raw sample is snapped to the more likely of {0, 1} under the Gaussian
  likelihood with equal priors (the MAP rule simplifies to nearest-of-0-or-1,
  i.e. thresholding at 0.5), then summed.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.dists.sampling_function import FunctionDistribution


def noisy_sensor_readings(
    states: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """One raw reading per neighbour sensor."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    return states + rng.normal(0.0, sigma, size=len(states))


def sensor_leaf(state: float, sigma: float) -> Uncertain:
    """A single noisy sensor as an Uncertain leaf: true state + N(0, sigma).

    Resampling the leaf corresponds to reading the physical sensor again —
    the paper notes each sensor "may be sampled multiple times in a single
    generation".
    """
    return Uncertain(Gaussian(state, sigma), label=f"sensor({state})")


def sensor_sum(states: np.ndarray, sigma: float) -> Uncertain:
    """SensorLife's ``CountLiveNeighbors``: sum of Uncertain sensors.

    Uses the overloaded addition operator, so the resulting Bayesian
    network has one leaf per physical sensor.
    """
    if len(states) == 0:
        raise ValueError("a cell must have at least one neighbour sensor")
    total = sensor_leaf(float(states[0]), sigma)
    for state in states[1:]:
        total = total + sensor_leaf(float(state), sigma)
    return total


def corrected_sensor_leaf(state: float, sigma: float) -> Uncertain:
    """BayesLife's ``SenseNeighborFixed``.

    The posterior-likelihood comparison between hypotheses s=0 and s=1 with
    equal priors and symmetric Gaussian noise reduces to choosing whichever
    of 0 or 1 is closer to the raw reading — thresholding at 0.5.
    """

    def sample_many(n: int, rng: np.random.Generator) -> np.ndarray:
        raw = state + rng.normal(0.0, sigma, size=n)
        return (raw > 0.5).astype(float)

    dist = FunctionDistribution(lambda rng: sample_many(1, rng)[0], fn_n=sample_many)
    return Uncertain(dist, label=f"fixed_sensor({state})")


def corrected_sensor_sum(states: np.ndarray, sigma: float) -> Uncertain:
    """BayesLife's live-neighbour count: sum of MAP-corrected sensors."""
    if len(states) == 0:
        raise ValueError("a cell must have at least one neighbour sensor")
    total = corrected_sensor_leaf(float(states[0]), sigma)
    for state in states[1:]:
        total = total + corrected_sensor_leaf(float(state), sigma)
    return total
