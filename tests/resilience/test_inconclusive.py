"""Inconclusive inference as data: structured truncation outcomes."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    Inconclusive,
    InconclusiveError,
    SPRT,
    TestDecision,
    Uncertain,
    evaluation_config,
)
from repro.core.sprt import FixedSampleTest, GroupSequentialTest, TestResult
from repro.dists import Gaussian
from repro.resilience import InconclusiveWarning
from repro.rng import default_rng
from repro.runtime.metrics import RuntimeMetrics


def fair_coin():
    """Evidence pinned exactly at 0.5: testing against 0.5 cannot conclude."""
    return Uncertain(Gaussian(0.0, 1.0)) > 0.0


def pinned(p):
    """A Bernoulli sampler with exact success fraction ``p`` per batch."""

    def draw(k):
        ones = int(round(p * k))
        return np.arange(k) < ones

    return draw


class TestStructuredOutcome:
    def test_sprt_truncation_carries_inconclusive_record(self):
        result = SPRT(threshold=0.5, max_samples=500).run(pinned(0.5))
        assert result.decision is TestDecision.INCONCLUSIVE
        outcome = result.inconclusive
        assert isinstance(outcome, Inconclusive)
        assert outcome.threshold == 0.5
        assert outcome.samples_used == outcome.max_samples == 500
        assert outcome.p_hat == pytest.approx(0.5)
        assert "truncated" in outcome.describe()
        assert "500" in outcome.describe()

    def test_decisive_results_have_no_record(self):
        result = SPRT(threshold=0.5).run(pinned(0.95))
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE
        assert result.inconclusive is None

    def test_fixed_sample_significance_truncation(self):
        test = FixedSampleTest(threshold=0.5, n=100, significance=0.05)
        result = test.run(pinned(0.52))
        assert result.decision is TestDecision.INCONCLUSIVE
        assert result.inconclusive.max_samples == 100

    def test_group_sequential_truncation(self):
        test = GroupSequentialTest(threshold=0.5, looks=3, group_size=50)
        result = test.run(pinned(0.5))
        assert result.decision is TestDecision.INCONCLUSIVE
        assert result.inconclusive.samples_used == test.max_samples == 150

    def test_zero_sample_p_hat_is_half_not_nan(self):
        # Maximum ignorance, never a NaN that poisons downstream use.
        result = TestResult(TestDecision.INCONCLUSIVE, 0, 0)
        assert result.p_hat == 0.5
        outcome = Inconclusive(0.5, 0, 0, 100)
        assert outcome.p_hat == 0.5


class TestPolicyMatrix:
    def run_inconclusive(self, **overrides):
        coin = fair_coin()
        with evaluation_config(
            rng=default_rng(2), max_samples=200, epsilon=0.01, **overrides
        ):
            return coin.test(0.5)

    def test_best_guess_default_is_silent_false(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", InconclusiveWarning)
            result = self.run_inconclusive()
        assert result.decision is TestDecision.INCONCLUSIVE
        assert bool(result) is False  # neither-branch semantics preserved

    def test_warn_policy_emits_warning_and_answers(self):
        with pytest.warns(InconclusiveWarning, match="truncated"):
            result = self.run_inconclusive(on_inconclusive="warn")
        assert result.decision is TestDecision.INCONCLUSIVE

    def test_raise_policy_carries_the_outcome(self):
        with pytest.raises(InconclusiveError) as excinfo:
            self.run_inconclusive(on_inconclusive="raise")
        outcome = excinfo.value.outcome
        assert isinstance(outcome, Inconclusive)
        assert outcome.samples_used == 200

    def test_policy_applies_to_boolean_conditionals_too(self):
        coin = fair_coin()
        with evaluation_config(
            rng=default_rng(2),
            max_samples=200,
            epsilon=0.01,
            on_inconclusive="raise",
        ):
            with pytest.raises(InconclusiveError):
                coin.pr(0.5)

    def test_decisive_tests_never_trigger_the_policy(self):
        sure = Uncertain(Gaussian(10.0, 0.1)) > 0.0
        with evaluation_config(rng=default_rng(3), on_inconclusive="raise"):
            assert sure.pr(0.5) is True

    def test_metrics_record_policy_attribution(self):
        sink = RuntimeMetrics()
        coin = fair_coin()
        with evaluation_config(
            rng=default_rng(2),
            max_samples=200,
            epsilon=0.01,
            on_inconclusive="warn",
            metrics=sink,
        ):
            with pytest.warns(InconclusiveWarning):
                coin.test(0.5)
        tests = sink.snapshot()["tests"]
        assert tests["inconclusive"] == 1
        assert tests["inconclusive_by_policy"] == {"warn": 1}
