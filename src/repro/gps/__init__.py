"""GPS substrate for the GPS-Walking case study (Section 5.1).

The paper evaluates Uncertain<T> on a real Windows-Phone GPS trace.  We
reproduce the entire pipeline with a synthetic substitute whose statistics
match the paper's published model:

- :mod:`repro.gps.geo` — ``GeoCoordinate`` (a numeric pair type, as in the
  paper's Figure 5) plus planar/great-circle geometry.
- :mod:`repro.gps.sensor` — the Rayleigh GPS error posterior of Section 4.1
  and a ``GpsSensor`` producing noisy fixes from ground truth.
- :mod:`repro.gps.trace` — a seeded synthetic walk generator standing in
  for the authors' 15-minute outdoor walk (substitution #1 in DESIGN.md).
- :mod:`repro.gps.walking` — the GPS-Walking application, in both its naive
  (Figure 5a) and Uncertain (Figure 5b) forms.
- :mod:`repro.gps.priors` — walking-speed and road-snapping priors
  (Section 3.5, Figure 10).
- :mod:`repro.gps.ticket` — the speeding-ticket model behind Figure 4 and
  Section 2's quantitative claims.
"""

from repro.gps.geo import GeoCoordinate, enu_distance_m, haversine_m
from repro.gps.sensor import GpsFix, GpsSensor, gps_posterior
from repro.gps.trace import WalkConfig, WalkTrace, generate_walk
from repro.gps.walking import (
    GpsWalkingDecision,
    naive_speeds_mph,
    run_naive_walking,
    run_uncertain_walking,
    uncertain_speed_mph,
)
from repro.gps.priors import road_prior, walking_speed_prior
from repro.gps.geofence import Geofence, entry_events_naive, entry_events_uncertain
from repro.gps.ticket import speed_ci_95_mph, ticket_probability

__all__ = [
    "GeoCoordinate",
    "haversine_m",
    "enu_distance_m",
    "GpsFix",
    "GpsSensor",
    "gps_posterior",
    "WalkConfig",
    "WalkTrace",
    "generate_walk",
    "GpsWalkingDecision",
    "naive_speeds_mph",
    "run_naive_walking",
    "run_uncertain_walking",
    "uncertain_speed_mph",
    "walking_speed_prior",
    "road_prior",
    "Geofence",
    "entry_events_naive",
    "entry_events_uncertain",
    "speed_ci_95_mph",
    "ticket_probability",
]
