"""Service-tier load benchmark: a flood of GPS walkers asking "am I speeding?"

Thousands of simulated walkers each hold a same-shape speeding-test query
— the paper's Figure 4 conditional in the structural standard form, an
ENU-linearised speed posterior built from Gaussian velocity components —
and flood the service concurrently.  Two arms:

- **unbatched**: ``Service(max_batch=1)`` — one engine run per request,
  the request-at-a-time baseline every prior PR measured.
- **batched**: the coalescer merges the structurally identical queries
  arriving within the window into shared bulk evaluations (one compiled
  plan, one fused kernel, pooled draws for seedless requests).

Writes throughput and latency percentiles for both arms to
``BENCH_service.json`` at the repo root, cross-checks batched-vs-solo
bit-identity for a seeded probe subset, and asserts the acceptance
floor: batched throughput >= 1.5x unbatched on the fused engine for
same-shape floods.

``SERVICE_BENCH_SMOKE=1`` shrinks the flood for CI smoke runs (the
assertion still holds; the recorded numbers say which mode wrote them).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host

from repro import Uncertain
from repro.dists import Gaussian
from repro.service import QueryRequest, Service, evaluate_request

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE", "") == "1"
WALKERS = 200 if SMOKE else 2_000
SAMPLES_PER_QUERY = 500
SPEED_LIMIT_MPH = 4.0
WINDOW_S = 0.002
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

# GPS error model: ~4 m 95% CEP over a 1 s resample interval, in mph.
_DT_S = 1.0
_MPS_TO_MPH = 2.23693629
_SIGMA_MPH = 2.0 * _MPS_TO_MPH / _DT_S
_WALK_MPH = 3.1


def walker_query():
    """One walker's speeding test, in the structurally hashable form.

    Each walker builds its *own* graph (fresh nodes) with identical
    parameters — the same-shape flood.  Coalescing has to recognise the
    isomorphism structurally; nothing is shared by object identity.
    """
    v_east = Uncertain(Gaussian(_WALK_MPH * 0.6, _SIGMA_MPH), label="vE")
    v_north = Uncertain(Gaussian(_WALK_MPH * 0.8, _SIGMA_MPH), label="vN")
    speed = (v_east * v_east + v_north * v_north) ** 0.5
    return speed > SPEED_LIMIT_MPH


async def _flood(service: Service, requests):
    """Submit every request concurrently; return (wall_s, results)."""
    start = time.perf_counter()
    results = await asyncio.gather(*[service.submit(r) for r in requests])
    return time.perf_counter() - start, results


def _run_arm(engine: str, max_batch: int, window: float, seeded: bool):
    requests = [
        QueryRequest(
            value=walker_query(),
            kind="pr",
            samples=SAMPLES_PER_QUERY,
            seed=(walker if seeded else None),
        )
        for walker in range(WALKERS)
    ]

    async def scenario():
        async with Service(
            engine=engine,
            window=window,
            max_batch=max_batch,
            max_pending=WALKERS + 16,
        ) as svc:
            # Warm the plan cache / fused kernel outside the timed region.
            await svc.submit(QueryRequest(
                value=walker_query(), kind="pr", samples=8, seed=0
            ))
            wall, results = await _flood(svc, requests)
            return wall, results, svc.stats()

    wall, results, stats = asyncio.run(scenario())
    latencies = np.array([r.latency_s for r in results])
    return {
        "engine": engine,
        "max_batch": max_batch,
        "window_s": window,
        "seeded": seeded,
        "walkers": WALKERS,
        "samples_per_query": SAMPLES_PER_QUERY,
        "wall_seconds": wall,
        "throughput_rps": WALKERS / wall,
        "latency_p50_s": float(np.quantile(latencies, 0.50)),
        "latency_p99_s": float(np.quantile(latencies, 0.99)),
        "batches": stats["batches"],
        "engine_runs": stats["engine_runs"],
        "coalesced_requests": stats["coalesced_requests"],
        "pooled_requests": stats["pooled_requests"],
        "shed": stats["shed"],
    }, results


def _determinism_probe(engine: str) -> bool:
    """Seeded batched answers must equal solo answers bit for bit."""
    value = walker_query()
    probes = [
        QueryRequest(value=value, kind="pr", samples=SAMPLES_PER_QUERY, seed=s)
        for s in range(8)
    ]
    solo = [evaluate_request(p, engine=engine) for p in probes]

    async def scenario():
        async with Service(engine=engine, window=WINDOW_S) as svc:
            return await asyncio.gather(*[svc.submit(p) for p in probes])

    batched = asyncio.run(scenario())
    return all(
        s.value == b.value and s.extra["evidence"] == b.extra["evidence"]
        for s, b in zip(solo, batched)
    )


def test_service_load(benchmark):
    deterministic = _determinism_probe("fused")
    assert deterministic, "seeded batched results diverged from solo"

    unbatched, _ = _run_arm("fused", max_batch=1, window=0.0, seeded=False)

    def batched_arm():
        return _run_arm("fused", max_batch=WALKERS, window=WINDOW_S, seeded=False)

    batched, _ = benchmark.pedantic(batched_arm, rounds=1, iterations=1)

    # A seeded flood keeps per-request reproducibility; record its cost too.
    seeded, _ = _run_arm("fused", max_batch=WALKERS, window=WINDOW_S, seeded=True)

    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]
    result = {
        "workload": {
            "description": "same-shape GPS speeding-test flood (pr queries)",
            "walkers": WALKERS,
            "samples_per_query": SAMPLES_PER_QUERY,
            "smoke": SMOKE,
        },
        "unbatched": unbatched,
        "batched": batched,
        "batched_seeded": seeded,
        "batched_over_unbatched": speedup,
        "deterministic": deterministic,
    }
    stamp_host(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result, indent=2))

    assert batched["shed"] == 0 and unbatched["shed"] == 0
    assert batched["coalesced_requests"] > 0, "flood never coalesced"
    assert batched["engine_runs"] < WALKERS, "batched arm ran per-request"
    assert speedup >= 1.5, (
        f"batched throughput only {speedup:.2f}x unbatched on the fused "
        f"engine (floor is 1.5x)"
    )
