"""Log-normal distribution."""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, NON_NEGATIVE, Support


class LogNormal(Distribution):
    """LogNormal(mu, sigma): exp of a Gaussian; a common positive error model."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (np.log(x) - self.mu) / self.sigma
            lp = (
                -0.5 * z * z
                - np.log(x)
                - math.log(self.sigma)
                - 0.5 * math.log(2 * math.pi)
            )
        return np.where(x > 0, lp, -np.inf)

    def cdf(self, x):
        from scipy.special import erf

        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (np.log(x) - self.mu) / (self.sigma * math.sqrt(2))
            c = 0.5 * (1 + erf(z))
        return np.where(x > 0, c, 0.0)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2)

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1) * math.exp(2 * self.mu + s2)

    @property
    def support(self) -> Support:
        return NON_NEGATIVE
