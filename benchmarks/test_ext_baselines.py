"""Extension bench: interval analysis and CES prob<T> baselines."""

from benchmarks.conftest import run_and_report


def test_ext_baselines(benchmark):
    run_and_report(benchmark, "ext_baselines", fast=True)
