"""Hypothesis tests for conditionals (Section 4.3).

A comparison over uncertain data is a Bernoulli random variable whose
parameter ``p`` is the evidence for the comparison.  Conditionals must turn
that Bernoulli into a concrete branch decision while controlling
*approximation error* — the error introduced because Uncertain<T> only ever
sees samples.  The paper's runtime does this with Wald's sequential
probability ratio test (SPRT), drawing batches of ``k`` samples until the
test reaches significance or a maximum sample size.

Three tests are provided:

- :class:`SPRT` — the paper's mechanism.  Optimal average sample size,
  unbounded worst case, truncated at ``max_samples``.
- :class:`FixedSampleTest` — the "fixed pool of samples" baseline the paper
  contrasts against (Park et al.); also the naive one-sample decision when
  ``n=1``.
- :class:`GroupSequentialTest` — Pocock-style group sequential boundaries,
  the paper's anticipated future work ("closed" sequential tests with a
  guaranteed sample-size bound).

All tests consume a sampler ``draw(k) -> ndarray of k booleans`` so they are
independent of the graph machinery and unit-testable against synthetic
Bernoulli streams.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Callable

import numpy as np
from scipy import stats

from repro.resilience.policies import Inconclusive
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace


class TestDecision(enum.Enum):
    """Ternary outcome of a hypothesis test (Section 3.4's ternary logic)."""

    ACCEPT_ALTERNATIVE = "accept_alternative"  # evidence that p > threshold
    ACCEPT_NULL = "accept_null"  # evidence that p <= threshold
    INCONCLUSIVE = "inconclusive"  # max samples reached without significance

    def as_bool(self) -> bool:
        """Branch decision: only a significant alternative takes the branch.

        Inconclusive maps to ``False`` — this is what makes
        ``if (a < b) ... elif (a >= b) ...`` able to take *neither* branch,
        just as the paper describes.
        """
        return self is TestDecision.ACCEPT_ALTERNATIVE


@dataclasses.dataclass(frozen=True)
class TestResult:
    """Outcome of a test run: decision plus sampling diagnostics.

    Truncated runs additionally carry a structured
    :class:`~repro.resilience.Inconclusive` record in ``inconclusive``
    (``None`` for significant decisions), so callers can inspect *how*
    undecided the test was instead of only seeing the ternary decision.
    """

    decision: TestDecision
    samples_used: int
    successes: int
    inconclusive: Inconclusive | None = None

    @property
    def p_hat(self) -> float:
        """Empirical success fraction; 0.5 (maximum ignorance, never a
        NaN that poisons downstream arithmetic) when no samples were
        drawn."""
        return self.successes / self.samples_used if self.samples_used else 0.5

    def __bool__(self) -> bool:
        return self.decision.as_bool()


BernoulliSampler = Callable[[int], np.ndarray]


class HypothesisTest:
    """Base class: test H0: p <= threshold against HA: p > threshold."""

    def __init__(self, threshold: float) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = float(threshold)

    def run(self, draw: BernoulliSampler) -> TestResult:
        """Run the test against ``draw``, with runtime instrumentation.

        The statistical procedure itself lives in ``_run`` (template
        method); this wrapper attributes the run — number of sequential
        steps (batch draws) and total samples — to the runtime metrics
        registry and, when a tracer is installed, records a
        ``test.<Kind>.run`` span enclosing the engine batches it caused.
        """
        kind = type(self).__name__
        with _trace.span(f"test.{kind}.run", threshold=self.threshold) as attrs:
            result, steps = self._run(draw)
            attrs["steps"] = steps
            attrs["samples"] = result.samples_used
            attrs["decision"] = result.decision.value
        sink = _metrics.active()
        if sink is not None:
            sink.record_test(kind, steps, result.samples_used)
        return result

    def _run(self, draw: BernoulliSampler) -> tuple[TestResult, int]:
        """Subclass hook: return ``(result, sequential_steps)``."""
        raise NotImplementedError


class SPRT(HypothesisTest):
    """Wald's sequential probability ratio test with an indifference region.

    Tests the simple hypotheses ``p = threshold - epsilon`` versus
    ``p = threshold + epsilon``; within the indifference region either
    decision is acceptable.  Sampling proceeds in batches of ``batch_size``
    (the paper's ``k = 10``) until the log-likelihood ratio crosses a Wald
    boundary or ``max_samples`` is reached.

    Boundaries: accept HA when LLR >= log((1-beta)/alpha); accept H0 when
    LLR <= log(beta/(1-alpha)).  ``alpha`` bounds false positives
    (significance), ``beta`` false negatives (1 - power).
    """

    def __init__(
        self,
        threshold: float = 0.5,
        alpha: float = 0.05,
        beta: float = 0.05,
        epsilon: float = 0.05,
        batch_size: int = 10,
        max_samples: int = 10_000,
    ) -> None:
        super().__init__(threshold)
        if not 0 < alpha < 1 or not 0 < beta < 1:
            raise ValueError(f"alpha and beta must be in (0, 1), got {alpha}, {beta}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if batch_size <= 0 or max_samples < batch_size:
            raise ValueError("need batch_size >= 1 and max_samples >= batch_size")
        self.alpha = float(alpha)
        self.beta = float(beta)
        # Shrink the indifference region near the boundaries: for a high
        # threshold like .pr(0.95), a fixed epsilon of 0.05 would place the
        # alternative at p = 1.0, where a single failure sends the LLR to
        # -infinity and the test can essentially never accept.  Halving the
        # distance to the nearest boundary keeps both hypotheses proper.
        epsilon = float(min(epsilon, (1.0 - threshold) / 2.0, threshold / 2.0))
        self.p0 = threshold - epsilon
        self.p1 = threshold + epsilon
        if not 0.0 < self.p0 < self.p1 < 1.0:
            raise ValueError(
                f"indifference region around {threshold} collapsed: [{self.p0}, {self.p1}]"
            )
        self.epsilon = epsilon
        self.batch_size = int(batch_size)
        self.max_samples = int(max_samples)
        # Per-observation log-likelihood-ratio increments.
        self._llr_success = math.log(self.p1 / self.p0)
        self._llr_failure = math.log((1.0 - self.p1) / (1.0 - self.p0))
        self.upper_bound = math.log((1.0 - self.beta) / self.alpha)
        self.lower_bound = math.log(self.beta / (1.0 - self.alpha))

    def llr(self, successes: int, failures: int) -> float:
        """Log-likelihood ratio of HA over H0 after the given counts."""
        return successes * self._llr_success + failures * self._llr_failure

    def _run(self, draw: BernoulliSampler) -> tuple[TestResult, int]:
        successes = 0
        total = 0
        steps = 0
        while total < self.max_samples:
            k = min(self.batch_size, self.max_samples - total)
            batch = np.asarray(draw(k), dtype=bool)
            if batch.shape != (k,):
                raise ValueError(
                    f"sampler returned shape {batch.shape}, expected ({k},)"
                )
            successes += int(batch.sum())
            total += k
            steps += 1
            llr = self.llr(successes, total - successes)
            if llr >= self.upper_bound:
                return (
                    TestResult(TestDecision.ACCEPT_ALTERNATIVE, total, successes),
                    steps,
                )
            if llr <= self.lower_bound:
                return TestResult(TestDecision.ACCEPT_NULL, total, successes), steps
        outcome = Inconclusive(self.threshold, total, successes, self.max_samples)
        return (
            TestResult(TestDecision.INCONCLUSIVE, total, successes, outcome),
            steps,
        )


class FixedSampleTest(HypothesisTest):
    """Fixed-size one-sided binomial test — the non-sequential baseline.

    With ``significance=None`` this is the naive plug-in decision
    (``p_hat > threshold``), which is what a fixed pool of samples with no
    statistical control gives you; ``n=1`` then reproduces NaiveLife's
    single-sample decisions exactly.  With a significance level, an exact
    binomial test is applied and insufficient evidence in *either* direction
    is inconclusive.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        n: int = 1_000,
        significance: float | None = None,
    ) -> None:
        super().__init__(threshold)
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if significance is not None and not 0 < significance < 1:
            raise ValueError(f"significance must be in (0, 1), got {significance}")
        self.n = int(n)
        self.significance = significance

    def _run(self, draw: BernoulliSampler) -> tuple[TestResult, int]:
        batch = np.asarray(draw(self.n), dtype=bool)
        successes = int(batch.sum())
        if self.significance is None:
            decision = (
                TestDecision.ACCEPT_ALTERNATIVE
                if successes > self.threshold * self.n
                else TestDecision.ACCEPT_NULL
            )
            return TestResult(decision, self.n, successes), 1
        p_upper = stats.binom.sf(successes - 1, self.n, self.threshold)
        p_lower = stats.binom.cdf(successes, self.n, self.threshold)
        if p_upper <= self.significance:
            decision = TestDecision.ACCEPT_ALTERNATIVE
        elif p_lower <= self.significance:
            decision = TestDecision.ACCEPT_NULL
        else:
            decision = TestDecision.INCONCLUSIVE
        outcome = (
            Inconclusive(self.threshold, self.n, successes, self.n)
            if decision is TestDecision.INCONCLUSIVE
            else None
        )
        return TestResult(decision, self.n, successes, outcome), 1


class GroupSequentialTest(HypothesisTest):
    """Pocock-style group sequential test with a hard sample-size cap.

    The paper anticipates replacing the truncated SPRT with group sequential
    methods from the clinical-trials literature (Jennison & Turnbull), which
    guarantee an upper bound on sample size.  We implement the Pocock
    scheme: ``looks`` interim analyses after every ``group_size`` samples,
    each a two-sided z-test at a constant nominal level chosen so the total
    type-I error is ``alpha``.
    """

    #: Pocock constant nominal significance levels for overall alpha=0.05.
    _POCOCK_NOMINAL = {1: 0.05, 2: 0.0294, 3: 0.0221, 4: 0.0182, 5: 0.0158,
                       6: 0.0142, 7: 0.0130, 8: 0.0120, 9: 0.0112, 10: 0.0106}

    def __init__(
        self,
        threshold: float = 0.5,
        alpha: float = 0.05,
        looks: int = 5,
        group_size: int = 200,
    ) -> None:
        super().__init__(threshold)
        if looks < 1:
            raise ValueError(f"looks must be >= 1, got {looks}")
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.alpha = float(alpha)
        self.looks = int(looks)
        self.group_size = int(group_size)
        nominal = self._POCOCK_NOMINAL.get(min(self.looks, 10), 0.0106)
        # Scale the tabulated alpha=0.05 constants for other overall levels.
        self.nominal_level = nominal * (self.alpha / 0.05)
        self._z_crit = float(stats.norm.isf(self.nominal_level / 2))

    @property
    def max_samples(self) -> int:
        return self.looks * self.group_size

    def _run(self, draw: BernoulliSampler) -> tuple[TestResult, int]:
        successes = 0
        total = 0
        steps = 0
        p0 = self.threshold
        for _ in range(self.looks):
            batch = np.asarray(draw(self.group_size), dtype=bool)
            successes += int(batch.sum())
            total += self.group_size
            steps += 1
            se = math.sqrt(p0 * (1 - p0) / total)
            z = (successes / total - p0) / se
            if z >= self._z_crit:
                return (
                    TestResult(TestDecision.ACCEPT_ALTERNATIVE, total, successes),
                    steps,
                )
            if z <= -self._z_crit:
                return TestResult(TestDecision.ACCEPT_NULL, total, successes), steps
        outcome = Inconclusive(self.threshold, total, successes, self.max_samples)
        return (
            TestResult(TestDecision.INCONCLUSIVE, total, successes, outcome),
            steps,
        )
