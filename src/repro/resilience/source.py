"""Flaky-source hardening: retries, backoff, and a circuit breaker.

Evidence sources fail in the real world — a GPS receiver drops fixes, a
network-backed sampling function times out, a sensor returns garbage.
:class:`ResilientSource` wraps any :class:`~repro.dists.base.Distribution`
(or plain sampling function) with the standard trio of fault-tolerance
mechanisms, all deterministic given their seeds:

- **bounded retries** with exponential backoff and seeded jitter (the
  jitter stream is its own generator, so it never perturbs the sample
  stream);
- a **sliding-window circuit breaker** (:class:`CircuitBreaker`): when
  the recent failure fraction crosses a threshold the breaker *opens*
  and draws come from a declared ``fallback`` distribution — graceful
  degradation instead of an exception storm;
- **half-open recovery probes**: after a configured number of degraded
  draws the breaker lets one call through to the primary; success closes
  the breaker, failure re-opens it.

The breaker is *call-count based*, not wall-clock based: reproducibility
is a design constraint of this codebase (the chaos suite replays failure
scenarios bit-for-bit), and wall-clock state would break that.  All
events — retries, trips, fallbacks, probes, recoveries — are counted in
:mod:`repro.runtime.metrics` and emitted as trace events.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.dists.base import Distribution
from repro.dists.sampling_function import FunctionDistribution
from repro.resilience.policies import SourceFailure
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window circuit breaker over primary-call outcomes.

    Parameters
    ----------
    window:
        Number of most-recent primary calls the failure fraction is
        computed over.
    failure_threshold:
        Fraction of failures in the window at (or above) which the
        breaker trips from CLOSED to OPEN.
    min_calls:
        Minimum outcomes in the window before the breaker may trip
        (prevents one early failure from tripping a fresh breaker).
    recovery_calls:
        Number of degraded (fallback) draws served while OPEN before the
        breaker moves to HALF_OPEN and probes the primary once.
    """

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        recovery_calls: int = 8,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1 or recovery_calls < 1:
            raise ValueError("min_calls and recovery_calls must be >= 1")
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_calls = int(min_calls)
        self.recovery_calls = int(recovery_calls)
        self.state = CLOSED
        self.trips = 0
        self.recoveries = 0
        self._outcomes: list[bool] = []  # True = failure
        self._open_draws = 0

    @property
    def recovery_remaining(self) -> int:
        """Refused draws left before an OPEN breaker probes the primary
        (0 when CLOSED or HALF_OPEN) — the basis for retry-after hints."""
        if self.state != OPEN:
            return 0
        return max(0, self.recovery_calls - self._open_draws)

    def allow_primary(self) -> bool:
        """May the next draw try the primary source?

        CLOSED: yes.  HALF_OPEN: yes (this is the probe).  OPEN: no,
        unless enough degraded draws have been served — then the breaker
        moves to HALF_OPEN and admits the probe.
        """
        if self.state == CLOSED or self.state == HALF_OPEN:
            return True
        self._open_draws += 1
        if self._open_draws >= self.recovery_calls:
            self.state = HALF_OPEN
            _trace.event("resilience.breaker.half_open")
            return True
        return False

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            # Probe succeeded: close and forget the failure history.
            self.state = CLOSED
            self.recoveries += 1
            self._outcomes = []
            sink = _metrics.active()
            if sink is not None:
                sink.record_source(recoveries=1)
            _trace.event("resilience.breaker.close")
            return
        self._push(False)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # Probe failed: back to OPEN for another recovery period.
            self.state = OPEN
            self._open_draws = 0
            _trace.event("resilience.breaker.reopen")
            return
        self._push(True)
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.min_calls
            and (sum(self._outcomes) / len(self._outcomes))
            >= self.failure_threshold
        ):
            self.state = OPEN
            self.trips += 1
            self._open_draws = 0
            sink = _metrics.active()
            if sink is not None:
                sink.record_source(trips=1)
            _trace.event(
                "resilience.breaker.trip",
                failures=sum(self._outcomes),
                window=len(self._outcomes),
            )

    def _push(self, failed: bool) -> None:
        self._outcomes.append(failed)
        if len(self._outcomes) > self.window:
            self._outcomes.pop(0)


def _as_distribution(source: Any) -> Distribution:
    if isinstance(source, Distribution):
        return source
    if callable(source):
        return FunctionDistribution(source)
    raise TypeError(
        f"expected a Distribution or sampling function, got {type(source).__name__}"
    )


class ResilientSource(Distribution):
    """A distribution that survives a misbehaving primary source.

    Parameters
    ----------
    primary:
        The wrapped :class:`Distribution` or sampling function
        ``fn(rng) -> sample``.
    fallback:
        Distribution (or sampling function) served when the primary is
        exhausted or the breaker is open.  ``None`` means failures
        surface as :class:`~repro.resilience.policies.SourceFailure`.
    max_retries:
        Retries per draw after the first attempt fails.
    backoff_s / jitter:
        First-retry delay in seconds, doubled per retry, multiplied by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` from the seeded jitter
        generator.  The default ``backoff_s=0`` never sleeps.
    breaker:
        A :class:`CircuitBreaker`, or ``None`` to disable breaking.
    failure_types:
        Exception types counted as source failures; anything else
        propagates untouched.
    seed:
        Seed for the jitter generator (kept separate from the sampling
        generator so retries never perturb the sample stream).
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        primary: Any,
        fallback: Any | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.0,
        jitter: float = 0.5,
        breaker: CircuitBreaker | None = None,
        failure_types: tuple = (Exception,),
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0 or jitter < 0:
            raise ValueError("backoff_s and jitter must be non-negative")
        self.primary = _as_distribution(primary)
        self.fallback = None if fallback is None else _as_distribution(fallback)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.jitter = float(jitter)
        self.breaker = breaker
        self.failure_types = failure_types
        self._jitter_rng = np.random.default_rng(seed)
        self._sleep = sleep
        # Event counters (mirrored into runtime metrics; kept here so a
        # single source can be inspected directly in tests/notebooks).
        self.retries = 0
        self.failures = 0
        self.fallback_draws = 0

    def structural_params(self):
        # Sampling behaviour depends on runtime failures, breaker state and
        # retry counters; hardened sources are never structurally shared.
        return None

    @property
    def discrete(self) -> bool:  # type: ignore[override]
        return self.primary.discrete

    @property
    def support(self):
        return self.primary.support

    # -- draw path ----------------------------------------------------------

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        breaker = self.breaker
        if breaker is not None and not breaker.allow_primary():
            return self._degraded(n, rng, reason="breaker-open")
        probing = breaker is not None and breaker.state == HALF_OPEN
        delay = self.backoff_s
        last_exc: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            try:
                out = self.primary.sample_n(n, rng)
            except self.failure_types as exc:
                last_exc = exc
                self.failures += 1
                sink = _metrics.active()
                if sink is not None:
                    sink.record_source(failures=1)
                if attempt >= self.max_retries:
                    break
                self.retries += 1
                if sink is not None:
                    sink.record_source(retries=1)
                _trace.event(
                    "resilience.source.retry",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                )
                if delay > 0.0:
                    self._sleep(
                        delay * (1.0 + self.jitter * self._jitter_rng.random())
                    )
                    delay *= 2.0
            else:
                if breaker is not None:
                    breaker.record_success()
                return out
        # Retries exhausted for this draw.
        if breaker is not None:
            breaker.record_failure()
            if probing:
                # The probe failed; serve this draw degraded like the
                # OPEN state would have.
                return self._degraded(n, rng, reason="probe-failed")
        if self.fallback is not None:
            return self._degraded(n, rng, reason="retries-exhausted")
        raise SourceFailure(
            f"primary source failed {self.max_retries + 1} time(s) and no "
            f"fallback is declared (last error: {type(last_exc).__name__}: "
            f"{last_exc})"
        ) from last_exc

    def _degraded(self, n: int, rng, reason: str) -> np.ndarray:
        if self.fallback is None:
            raise SourceFailure(
                f"circuit breaker is {self.breaker.state if self.breaker else 'n/a'} "
                f"({reason}) and no fallback distribution is declared"
            )
        self.fallback_draws += 1
        sink = _metrics.active()
        if sink is not None:
            sink.record_source(fallbacks=1)
        _trace.event("resilience.source.fallback", reason=reason, n=int(n))
        return self.fallback.sample_n(n, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.breaker.state if self.breaker is not None else "no-breaker"
        return (
            f"<ResilientSource primary={type(self.primary).__name__} "
            f"fallback={type(self.fallback).__name__ if self.fallback else None} "
            f"breaker={state}>"
        )
