"""Tests for Uniform and DiscreteUniform."""

import numpy as np
import pytest

from repro.dists import DiscreteUniform, Uniform


class TestUniform:
    def test_moments(self):
        u = Uniform(2.0, 6.0)
        assert u.mean == 4.0
        assert u.variance == pytest.approx(16.0 / 12.0)

    def test_samples_in_range(self, rng):
        u = Uniform(-3.0, -1.0)
        s = u.sample_n(5_000, rng)
        assert s.min() >= -3.0 and s.max() < -1.0

    def test_pdf_inside_and_outside(self):
        u = Uniform(0.0, 2.0)
        assert float(u.pdf(1.0)) == pytest.approx(0.5)
        assert float(u.pdf(3.0)) == 0.0

    def test_cdf_clipping(self):
        u = Uniform(0.0, 1.0)
        assert float(u.cdf(-1.0)) == 0.0
        assert float(u.cdf(0.25)) == pytest.approx(0.25)
        assert float(u.cdf(2.0)) == 1.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)


class TestDiscreteUniform:
    def test_inclusive_bounds(self, rng):
        d = DiscreteUniform(1, 6)
        s = d.sample_n(10_000, rng)
        assert set(np.unique(s)) == {1, 2, 3, 4, 5, 6}

    def test_moments(self):
        d = DiscreteUniform(1, 6)
        assert d.mean == 3.5
        assert d.variance == pytest.approx(35.0 / 12.0)

    def test_pmf(self):
        d = DiscreteUniform(0, 4)
        assert float(d.pdf(2)) == pytest.approx(0.2)
        assert float(d.pdf(2.5)) == 0.0
        assert float(d.pdf(7)) == 0.0

    def test_single_point(self, rng):
        d = DiscreteUniform(3, 3)
        assert np.all(d.sample_n(10, rng) == 3)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            DiscreteUniform(4, 2)

    def test_discrete_flag(self):
        assert DiscreteUniform(0, 1).discrete
        assert not Uniform(0.0, 1.0).discrete
