"""Extension experiment: geofencing event storms (naive vs evidence)."""

from __future__ import annotations

from repro.core.conditionals import evaluation_config
from repro.experiments.base import ExperimentResult, experiment
from repro.gps.geo import GeoCoordinate
from repro.gps.geofence import Geofence, entry_events_naive, entry_events_uncertain
from repro.gps.sensor import GpsFix, gps_posterior
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


@experiment("ext_geofence")
def run(seed: int = 20, fast: bool = True) -> ExperimentResult:
    """Loitering outside a fence: naive containment fires on noise.

    Scenario A: a user stands 1 m outside the fence for N seconds with
    3 m fix jitter — every naive boundary crossing is a spurious entry.
    Scenario B: the user decisively walks into the fence — a real entry
    both flows must detect.
    """
    n = 60 if fast else 300
    rng = default_rng(seed)
    park = Geofence.rectangle(ORIGIN, 100.0, 80.0)

    loiter_true = ORIGIN.offset_m(-3.0, 40.0)
    loiter_fixes = [
        loiter_true.offset_m(rng.normal(0, 3.0), rng.normal(0, 3.0))
        for _ in range(n)
    ]
    naive_storm = entry_events_naive(park, loiter_fixes)
    loiter_locations = [
        gps_posterior(GpsFix(f, 6.0, float(i))) for i, f in enumerate(loiter_fixes)
    ]
    with evaluation_config(rng=default_rng(seed + 1)):
        uncertain_storm = entry_events_uncertain(park, loiter_locations, 0.95)

    walk_path = [ORIGIN.offset_m(-20.0 + 10.0 * i, 40.0) for i in range(10)]
    walk_locations = [
        gps_posterior(GpsFix(p, 3.0, float(i))) for i, p in enumerate(walk_path)
    ]
    with evaluation_config(rng=default_rng(seed + 2)):
        real_entries = entry_events_uncertain(park, walk_locations, 0.9)

    rows = [
        {
            "scenario": "loitering outside (spurious entries)",
            "naive_events": len(naive_storm),
            "uncertain_events": len(uncertain_storm),
        },
        {
            "scenario": "decisive entry (real event)",
            "naive_events": len(entry_events_naive(park, walk_path)),
            "uncertain_events": len(real_entries),
        },
    ]
    claims = {
        "naive containment produces an event storm": len(naive_storm) >= 3,
        "evidence gating thins the storm by >= 3x": len(uncertain_storm)
        <= len(naive_storm) // 3,
        "a real entry is still detected exactly once": len(real_entries) == 1,
    }
    return ExperimentResult(
        "ext_geofence", "geofencing with uncertain locations", rows, claims
    )
