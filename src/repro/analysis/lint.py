"""Pass 2: an AST linter for uncertainty bugs in user source code.

The paper's Section 2 catalogues three *uncertainty bugs*: treating an
estimate as a fact, compounding error through computation, and asking
boolean questions of probabilistic data.  The runtime already defends
against some of these (``Uncertain.__bool__`` raises); this linter moves
the rest of the defence to *before the program runs*:

- **UNC201** — ``float(x)`` / ``int(x)`` / ``bool(x)`` on an uncertain
  value: the coercion collapses a distribution to a number (or raises at
  runtime, for ``bool``).
- **UNC202** — branching on ``x.expected_value() > t`` (or ``x.E()``):
  the expected value is a point estimate; the whole point of the library
  is to branch on *evidence* (``if x > t:`` or ``(x > t).pr(alpha)``).
- **UNC203** — ``math.sqrt(x)`` and friends on an uncertain operand:
  ``math`` functions reject non-floats, and even when they appear to work
  the uncertainty is destroyed.  ``repro.lift(math.sqrt)`` is the lifted
  alternative.
- **UNC204** *(opt-in)* — an implicit conditional (``if x > t:``) inside
  a loop: each iteration silently runs an SPRT at the 50% threshold; a
  loop is usually where the false-positive/false-negative trade-off
  matters, so an explicit ``.pr(alpha)`` is clearer and cheaper to review.

**Taint inference.**  The checker is intraprocedural and deliberately
simple: a name becomes *uncertain* when it is assigned from an
``Uncertain(...)``/``uncertain(...)`` constructor (or ``.to_empirical()``,
``Uncertain.from_node``, a ``lift(...)`` call result), and taint
propagates through arithmetic, comparisons, and method calls that return
uncertain values.  Names never seen become uncertain are assumed plain —
the linter prefers false negatives over noise.

**Suppression.**  Append ``# unc: ignore`` (everything) or
``# unc: ignore[UNC201,UNC203]`` (specific rules) to the offending line.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LINT_RULES

#: Calls whose result is an uncertain value, by callable name.
_UNCERTAIN_CONSTRUCTORS = frozenset({"Uncertain", "UncertainBool", "uncertain"})

#: Method names returning a new uncertain value when called on one.
_UNCERTAIN_METHODS = frozenset({"map", "given", "to_empirical", "between"})

#: Method names that *consume* uncertainty and return plain data.
_COLLAPSING_METHODS = frozenset({
    "expected_value", "E", "sample", "samples", "sd", "var", "ci",
    "histogram", "pr", "test", "evidence", "sample_with", "diagnose",
})

_ESTIMATE_METHODS = frozenset({"expected_value", "E"})

_IGNORE_RE = re.compile(r"#\s*unc:\s*ignore(?:\[([A-Za-z0-9 ,]+)\])?")


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (None = suppress everything)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(r.strip().upper() for r in rules.split(","))
    return out


def _call_name(node: ast.expr) -> str | None:
    """Trailing name of a call target: ``uncertain`` for ``repro.uncertain``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _TaintVisitor(ast.NodeVisitor):
    """Single forward pass computing taint and collecting findings."""

    def __init__(self, path: str, suppressions, select: frozenset[str]) -> None:
        self.path = path
        self.suppressions = suppressions
        self.select = select
        self.findings: list[Diagnostic] = []
        #: Names currently known to hold uncertain values (per scope).
        self.scopes: list[set[str]] = [set()]
        #: Names bound to ``lift(...)`` results (calling them taints).
        self.lifted: set[str] = set()
        self.loop_depth = 0

    # -- taint lattice ------------------------------------------------------

    def _is_tainted_name(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _taint(self, name: str) -> None:
        self.scopes[-1].add(name)

    def _untaint(self, name: str) -> None:
        for scope in self.scopes:
            scope.discard(name)

    def is_uncertain(self, node: ast.expr) -> bool:
        """Conservative may-analysis: can this expression be uncertain?"""
        if isinstance(node, ast.Name):
            return self._is_tainted_name(node.id)
        if isinstance(node, ast.BinOp):
            return self.is_uncertain(node.left) or self.is_uncertain(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_uncertain(node.operand)
        if isinstance(node, ast.Compare):
            return self.is_uncertain(node.left) or any(
                self.is_uncertain(c) for c in node.comparators
            )
        if isinstance(node, ast.BoolOp):
            return any(self.is_uncertain(v) for v in node.values)
        if isinstance(node, ast.Call):
            return self._call_returns_uncertain(node)
        if isinstance(node, ast.IfExp):
            return self.is_uncertain(node.body) or self.is_uncertain(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_uncertain(e) for e in node.elts)
        return False

    def _call_returns_uncertain(self, node: ast.Call) -> bool:
        name = _call_name(node.func)
        if name in _UNCERTAIN_CONSTRUCTORS:
            return True
        if name == "from_node":
            return True
        if isinstance(node.func, ast.Name) and node.func.id in self.lifted:
            return True
        if isinstance(node.func, ast.Attribute):
            receiver_uncertain = self.is_uncertain(node.func.value)
            if receiver_uncertain and name in _UNCERTAIN_METHODS:
                return True
            if receiver_uncertain and name in _COLLAPSING_METHODS:
                return False
        return False

    # -- scope handling -----------------------------------------------------

    def _visit_function(self, node) -> None:
        self.scopes.append(set())
        outer_loop_depth, self.loop_depth = self.loop_depth, 0
        self.generic_visit(node)
        self.loop_depth = outer_loop_depth
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        tainted = self.is_uncertain(node.value)
        is_lift = (
            isinstance(node.value, ast.Call)
            and _call_name(node.value.func) == "lift"
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self._taint(target.id)
                else:
                    self._untaint(target.id)
                if is_lift:
                    self.lifted.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)) and tainted:
                # Be conservative: any unpacked name may be uncertain.
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self._taint(element.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name) and self.is_uncertain(node.value):
            self._taint(node.target.id)

    # -- rule checks --------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        if rule_id not in self.select:
            return
        suppressed = self.suppressions.get(node.lineno, ())
        if suppressed is None or rule_id in (suppressed or ()):
            return
        rule = LINT_RULES[rule_id]
        self.findings.append(
            Diagnostic(
                rule=rule.id,
                severity=rule.severity,
                message=message,
                path=self.path,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # UNC201: float/int/bool coercion of an uncertain argument.
        if (
            isinstance(func, ast.Name)
            and func.id in ("float", "int", "bool")
            and node.args
            and self.is_uncertain(node.args[0])
        ):
            self._report(
                "UNC201", node,
                f"{func.id}() collapses an uncertain value to a single "
                "number, discarding its distribution; keep it Uncertain or "
                "use .expected_value() explicitly at the final sink",
            )
        # UNC203: math.* on uncertain operands.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
            and any(self.is_uncertain(a) for a in node.args)
        ):
            self._report(
                "UNC203", node,
                f"math.{func.attr}() on an uncertain operand; use "
                f"repro.lift(math.{func.attr}) so uncertainty propagates "
                "through the call",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # UNC205: a chained comparison (`a < x < b`) desugars to
        # `a < x and x < b`, and `and` calls bool() on the first link —
        # which silently collapses the intermediate evidence through a
        # hypothesis test mid-expression, so the result is a plain bool
        # gating a comparison instead of the joint evidence for
        # `a < x < b`.
        if len(node.ops) >= 2 and (
            self.is_uncertain(node.left)
            or any(self.is_uncertain(c) for c in node.comparators)
        ):
            self._report(
                "UNC205", node,
                "chained comparison on an uncertain operand desugars "
                "through an implicit bool() that collapses the "
                "intermediate evidence mid-expression; combine explicit "
                "comparisons instead: `(a < x) & (x < b)`",
            )
        self.generic_visit(node)

    def _contains_estimate_call(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _ESTIMATE_METHODS
                and self.is_uncertain(sub.func.value)
            ):
                return True
        return False

    def _is_pr_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("pr", "test")
        )

    def _check_branch(self, test: ast.expr) -> None:
        # UNC202: branching on a point estimate of an uncertain value.
        if isinstance(test, ast.Compare) and self._contains_estimate_call(test):
            self._report(
                "UNC202", test,
                "branch compares expected_value(), a point estimate — the "
                "estimate-as-fact bug; compare the uncertain value itself "
                "(`if x > t:` or `(x > t).pr(alpha)`) so the decision "
                "weighs the evidence",
            )
        # UNC204 (opt-in): implicit conditional inside a loop.
        elif (
            self.loop_depth > 0
            and not self._is_pr_call(test)
            and self.is_uncertain(test)
        ):
            self._report(
                "UNC204", test,
                "implicit conditional on uncertain evidence inside a loop; "
                "state the evidence threshold explicitly with "
                "`(cond).pr(alpha)`",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_branch(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_branch(node.test)
        self.loop_depth += 1
        for child in node.body:
            self.visit(child)
        self.loop_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self.loop_depth += 1
        for child in node.body:
            self.visit(child)
        self.loop_depth -= 1
        for child in node.orelse:
            self.visit(child)


def default_selection(enable_opt_in: bool = False) -> frozenset[str]:
    return frozenset(
        rule_id for rule_id, rule in LINT_RULES.items()
        if enable_opt_in or not rule.opt_in
    )


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint Python ``source``; returns diagnostics sorted by line.

    ``select`` names the enabled rules (defaults to every non-opt-in
    rule).  Syntax errors are reported as a single parse diagnostic
    rather than raised, so linting a tree of files never aborts.
    """
    selected = frozenset(select) if select is not None else default_selection()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="UNC200",
                severity="error",
                message=f"could not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
            )
        ]
    visitor = _TaintVisitor(path, _suppressions(source), selected)
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda d: (d.line or 0, d.col or 0, d.rule))


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    findings: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        findings.extend(
            lint_source(file_path.read_text(), path=str(file_path), select=select)
        )
    return findings


@dataclasses.dataclass(frozen=True)
class LintSummary:
    """Aggregate counts used by the CLI exit-code logic."""

    errors: int
    warnings: int
    infos: int

    @classmethod
    def of(cls, findings: Iterable[Diagnostic]) -> "LintSummary":
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in findings:
            counts[finding.severity] += 1
        return cls(counts["error"], counts["warning"], counts["info"])

    @property
    def failing(self) -> bool:
        return self.errors > 0 or self.warnings > 0
