"""Geofencing with uncertain locations.

"Am I inside the park?" is a boolean question asked of an uncertain
location — the canonical conditional uncertainty bug.  A naive containment
test on the reported fix produces false entry/exit events near the fence;
the Uncertain version evaluates the *evidence* that the user is inside and
lets the application pick its operating point (e.g. only unlock the door at
95% evidence).

Fences are convex or concave polygons in the local tangent plane; the
containment test lifts over ``Uncertain[GeoCoordinate]`` via
:func:`repro.core.lifting.apply`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lifting import apply
from repro.core.uncertain import Uncertain, UncertainBool
from repro.gps.geo import GeoCoordinate


class Geofence:
    """A polygonal fence defined by its corner coordinates (in order)."""

    def __init__(self, corners: Sequence[GeoCoordinate]) -> None:
        if len(corners) < 3:
            raise ValueError(f"a fence needs at least 3 corners, got {len(corners)}")
        self.corners = tuple(corners)
        self._origin = corners[0]
        self._poly = np.array([c.enu_m(self._origin) for c in corners])

    def contains_point(self, location: GeoCoordinate) -> bool:
        """Exact even-odd (ray casting) containment test."""
        x, y = location.enu_m(self._origin)
        poly = self._poly
        inside = False
        j = len(poly) - 1
        for i in range(len(poly)):
            xi, yi = poly[i]
            xj, yj = poly[j]
            crosses = (yi > y) != (yj > y)
            if crosses and x < (xj - xi) * (y - yi) / (yj - yi) + xi:
                inside = not inside
            j = i
        return inside

    def contains(self, location: Uncertain | GeoCoordinate) -> UncertainBool | bool:
        """Containment lifted over an uncertain location.

        A plain ``GeoCoordinate`` gets the exact boolean; an
        ``Uncertain[GeoCoordinate]`` gets an ``UncertainBool`` whose
        evidence is Pr[inside].
        """
        if isinstance(location, GeoCoordinate):
            return self.contains_point(location)
        return apply(self.contains_point, location, boolean=True, label="in_fence")

    @classmethod
    def rectangle(
        cls, south_west: GeoCoordinate, width_m: float, height_m: float
    ) -> "Geofence":
        """Axis-aligned rectangular fence anchored at its south-west corner."""
        if width_m <= 0 or height_m <= 0:
            raise ValueError("width_m and height_m must be positive")
        return cls(
            [
                south_west,
                south_west.offset_m(width_m, 0.0),
                south_west.offset_m(width_m, height_m),
                south_west.offset_m(0.0, height_m),
            ]
        )


def entry_events_naive(
    fence: Geofence, fixes: Sequence[GeoCoordinate]
) -> list[int]:
    """Indices where a naive fix-containment test reports fence entry."""
    events = []
    was_inside = False
    for i, fix in enumerate(fixes):
        inside = fence.contains_point(fix)
        if inside and not was_inside:
            events.append(i)
        was_inside = inside
    return events


def entry_events_uncertain(
    fence: Geofence,
    locations: Sequence[Uncertain],
    evidence: float = 0.95,
) -> list[int]:
    """Entry events that require strong evidence of containment.

    Entering demands ``Pr[inside] > evidence``; the state resets only when
    there is equally strong evidence of being *outside*, so fixes jittering
    across the boundary do not generate event storms.
    """
    if not 0.0 < evidence < 1.0:
        raise ValueError(f"evidence must be in (0, 1), got {evidence}")
    events = []
    was_inside = False
    for i, location in enumerate(locations):
        inside_cond = fence.contains(location)
        if not was_inside and inside_cond.pr(evidence):
            events.append(i)
            was_inside = True
        elif was_inside and (~inside_cond).pr(evidence):
            was_inside = False
    return events
