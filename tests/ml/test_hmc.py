"""Tests for the Hamiltonian Monte Carlo sampler."""

import numpy as np
import pytest

from repro.ml.hmc import HMCConfig, hmc_sample
from repro.ml.mlp import MLP
from repro.rng import default_rng


def tiny_problem(seed=0, n=40):
    rng = default_rng(seed)
    x = rng.normal(size=(n, 2))
    t = 0.5 * x[:, 0] - 0.25 * x[:, 1]
    mlp = MLP((2, 3, 1), rng=default_rng(seed + 1))
    mlp.train_sgd(x, t, epochs=60, rng=default_rng(seed + 2))
    return mlp, x, t


class TestHMCConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HMCConfig(n_samples=0)
        with pytest.raises(ValueError):
            HMCConfig(step_size=0.0)
        with pytest.raises(ValueError):
            HMCConfig(noise_sigma=-1.0)
        with pytest.raises(ValueError):
            HMCConfig(leapfrog_steps=0)


class TestHMCSampling:
    @pytest.fixture(scope="class")
    def result(self):
        mlp, x, t = tiny_problem()
        config = HMCConfig(
            n_samples=20, thin=3, burn_in=80, leapfrog_steps=10, step_size=1e-2
        )
        return hmc_sample(mlp, x, t, config=config, rng=default_rng(5)), mlp, x, t

    def test_sample_count_and_shape(self, result):
        res, mlp, _, _ = result
        assert res.samples.shape == (20, mlp.n_params)

    def test_acceptance_rate_reasonable(self, result):
        res, _, _, _ = result
        assert 0.2 <= res.acceptance_rate <= 1.0

    def test_samples_vary(self, result):
        res, _, _, _ = result
        assert np.std(res.samples, axis=0).max() > 1e-4

    def test_samples_fit_the_data(self, result):
        res, mlp, x, t = result
        # Every posterior network should still predict the data decently.
        for w in res.samples[:5]:
            assert mlp.rmse(x, t, w) < 0.5

    def test_trace_recorded(self, result):
        res, _, _, _ = result
        assert len(res.potential_trace) == 80 + 20 * 3

    def test_step_size_adapted(self, result):
        res, _, _, _ = result
        assert res.final_step_size > 0
        assert res.final_step_size != 1e-2  # adaptation moved it

    def test_wilder_prior_spreads_samples(self):
        mlp, x, t = tiny_problem(seed=7)
        tight = hmc_sample(
            mlp, x, t,
            config=HMCConfig(n_samples=15, thin=3, burn_in=60, noise_sigma=0.02),
            rng=default_rng(8),
        )
        loose = hmc_sample(
            mlp, x, t,
            config=HMCConfig(n_samples=15, thin=3, burn_in=60, noise_sigma=0.5),
            rng=default_rng(8),
        )
        assert (
            np.std(loose.samples, axis=0).mean()
            > np.std(tight.samples, axis=0).mean()
        )
