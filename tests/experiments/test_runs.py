"""Every experiment driver runs (fast protocol) and its shape claims hold.

These are the repository's integration tests against the paper: each one
regenerates a figure and asserts the qualitative conclusions.  The heavier
drivers are marked ``slow``-ish via smaller protocols inside ``fast=True``.
"""

import pytest

from repro.experiments import run_experiment

CHEAP = [
    "fig01", "fig04", "fig06", "fig08", "fig09", "fig11", "sec2", "table1",
    "fig17", "fig03", "ext_geofence", "ext_fusion", "ext_life_dynamics",
    "ext_baselines",
]


def test_ext_hardware_claims_hold():
    result = run_experiment("ext_hardware", fast=True)
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, f"ext_hardware failed claims: {failed}"


@pytest.mark.parametrize("experiment_id", CHEAP)
def test_cheap_experiments_claims_hold(experiment_id):
    result = run_experiment(experiment_id, fast=True)
    assert result.rows, f"{experiment_id} produced no rows"
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, f"{experiment_id} failed claims: {failed}"


def test_fig13_walking_claims_hold():
    result = run_experiment("fig13", fast=True)
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, f"fig13 failed claims: {failed}"


def test_fig14_sensorlife_claims_hold():
    result = run_experiment("fig14", fast=True)
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, f"fig14 failed claims: {failed}"


def test_fig15_fig16_parakeet_claims_hold():
    # fig15 and fig16 share one trained-model cache; run both here.
    for experiment_id in ("fig15", "fig16"):
        result = run_experiment(experiment_id, fast=True)
        failed = [claim for claim, ok in result.claims.items() if not ok]
        assert not failed, f"{experiment_id} failed claims: {failed}"


def test_results_render_as_text():
    result = run_experiment("fig06", fast=True)
    text = result.render()
    assert "fig06" in text and "[x]" in text
