"""Extension bench: compounding errors in free-running noisy Life."""

from benchmarks.conftest import run_and_report


def test_ext_life_dynamics(benchmark):
    run_and_report(benchmark, "ext_life_dynamics", fast=True)
