"""Extension bench: geofencing event storms."""

from benchmarks.conftest import run_and_report


def test_ext_geofence(benchmark):
    run_and_report(benchmark, "ext_geofence", fast=True)
