"""Beta distribution.

The paper notes (Section 5.2) that replacing SensorLife's Gaussian sensor
noise with a non-negative Beta noise model "does not appreciably change our
results"; we include Beta so that ablation is runnable.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.dists.base import Distribution, Support, UNIT_INTERVAL


class Beta(Distribution):
    """Beta(a, b) on the unit interval."""

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise ValueError(f"a and b must be positive, got {a}, {b}")
        self.a = float(a)
        self.b = float(b)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.beta(self.a, self.b, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            lp = (
                (self.a - 1) * np.log(x)
                + (self.b - 1) * np.log1p(-x)
                - special.betaln(self.a, self.b)
            )
        return np.where((x > 0) & (x < 1), lp, -np.inf)

    def cdf(self, x):
        x = np.clip(np.asarray(x, dtype=float), 0.0, 1.0)
        return special.betainc(self.a, self.b, x)

    @property
    def mean(self) -> float:
        return self.a / (self.a + self.b)

    @property
    def variance(self) -> float:
        s = self.a + self.b
        return self.a * self.b / (s**2 * (s + 1))

    @property
    def support(self) -> Support:
        return UNIT_INTERVAL
