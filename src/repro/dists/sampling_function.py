"""Wrap an arbitrary user-provided sampling function as a Distribution.

This is the paper's extension point for expert developers (Section 4.1):
"`The expert developer ... derives the correct distribution and provides it
to Uncertain<T> as a sampling function`".  BayesLife's corrected sensor
(Section 5.2) is implemented exactly this way.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.dists.base import REAL_LINE, Distribution, Support


class FunctionDistribution(Distribution):
    """Distribution defined by ``fn(rng) -> sample``.

    Optionally accepts a vectorised ``fn_n(n, rng) -> ndarray`` for speed and
    a ``log_pdf`` callable when the expert also knows the density.

    ``support`` lets the expert declare the closed interval their sampling
    function can produce (default: the whole real line).  A declared
    support is what lets user sampling functions participate in interval
    analysis (:mod:`repro.analysis`) — e.g. declaring ``(0, inf)`` for a
    time-delta sampler proves downstream divisions safe.  The declaration
    is trusted, not checked: a function that samples outside it makes the
    static analysis unsound for that graph.
    """

    def structural_params(self):
        # User sampling functions carry arbitrary behaviour (and state);
        # two FunctionDistributions are never structurally interchangeable.
        return None

    def __init__(
        self,
        fn: Callable[[np.random.Generator], Any],
        fn_n: Callable[[int, np.random.Generator], np.ndarray] | None = None,
        log_pdf: Callable[[Any], Any] | None = None,
        discrete: bool = False,
        support: Support | tuple[float, float] | None = None,
    ) -> None:
        self._fn = fn
        self._fn_n = fn_n
        self._log_pdf = log_pdf
        self.discrete = discrete
        if support is None:
            self._support = REAL_LINE
        elif isinstance(support, Support):
            self._support = support
        else:
            lower, upper = support
            self._support = Support(float(lower), float(upper))
        if self._support.lower > self._support.upper:
            raise ValueError(
                f"declared support has lower > upper: {self._support}"
            )

    def sample(self, rng: np.random.Generator) -> Any:
        return self._fn(rng)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self._fn_n is not None:
            out = np.asarray(self._fn_n(n, rng))
            if out.shape[0] != n:
                raise ValueError(
                    f"vectorised sampling function returned {out.shape[0]} samples, wanted {n}"
                )
            return out
        first = self._fn(rng)
        if isinstance(first, (int, float, np.integer, np.floating, bool, np.bool_)):
            out = np.empty(n, dtype=float)
            out[0] = first
            for i in range(1, n):
                out[i] = self._fn(rng)
            return out
        out = np.empty(n, dtype=object)
        out[0] = first
        for i in range(1, n):
            out[i] = self._fn(rng)
        return out

    def log_pdf(self, x):
        if self._log_pdf is None:
            raise NotImplementedError("no density was provided for this sampling function")
        return self._log_pdf(x)

    @property
    def support(self) -> Support:
        return self._support
