"""Tests for the Distribution base class and Support."""

import math

import numpy as np
import pytest

from repro.dists import Gaussian
from repro.dists.base import NON_NEGATIVE, REAL_LINE, Support, UNIT_INTERVAL


class TestSupport:
    def test_contains_interior(self):
        assert Support(0.0, 1.0).contains(0.5)

    def test_contains_endpoints(self):
        s = Support(0.0, 1.0)
        assert s.contains(0.0) and s.contains(1.0)

    def test_excludes_outside(self):
        s = Support(0.0, 1.0)
        assert not s.contains(-0.1) and not s.contains(1.1)

    def test_bounded_flag(self):
        assert Support(0.0, 1.0).is_bounded
        assert not REAL_LINE.is_bounded
        assert not NON_NEGATIVE.is_bounded

    def test_constants(self):
        assert UNIT_INTERVAL.lower == 0.0 and UNIT_INTERVAL.upper == 1.0
        assert REAL_LINE.lower == -math.inf


class TestDistributionDefaults:
    def test_sample_is_scalar_from_sample_n(self, rng):
        value = Gaussian(0.0, 1.0).sample(rng)
        assert isinstance(value, float)

    def test_pdf_from_log_pdf(self):
        g = Gaussian(0.0, 1.0)
        assert np.allclose(g.pdf(0.0), np.exp(g.log_pdf(0.0)))

    def test_std_from_variance(self):
        assert Gaussian(0.0, 2.0).std == pytest.approx(2.0)

    def test_empirical_mean_converges(self, fixed_rng):
        g = Gaussian(3.0, 1.0)
        assert g.empirical_mean(20_000, fixed_rng) == pytest.approx(3.0, abs=0.05)
