"""Tests for the Figure 14 evaluation harness."""


from repro.life.engine import random_board
from repro.life.evaluation import evaluate_variant, evaluate_variants, run_generation
from repro.life.variants import BayesLife, NaiveLife, SensorLife
from repro.rng import default_rng


class TestRunGeneration:
    def test_zero_noise_makes_no_errors(self):
        board = random_board(8, 8, rng=default_rng(0))
        from repro.core.conditionals import evaluation_config

        with evaluation_config(rng=default_rng(1)):
            wrong, updates, sensors, joints = run_generation(
                board, NaiveLife(0.0), default_rng(2)
            )
        assert wrong == 0
        assert updates == 64
        assert joints == 64  # one per cell for NaiveLife

    def test_sensor_sample_accounting(self):
        board = random_board(5, 5, rng=default_rng(3))
        from repro.core.conditionals import evaluation_config

        with evaluation_config(rng=default_rng(4), max_samples=200):
            _, updates, sensors, joints = run_generation(
                board, SensorLife(0.1), default_rng(5)
            )
        assert updates == 25
        assert joints >= updates  # at least one batch per decided cell
        assert sensors > joints  # multiple sensors per joint sample


class TestEvaluateVariant:
    def test_point_fields(self):
        point = evaluate_variant(
            NaiveLife(0.2), 0.2, rows=6, cols=6, generations=2, runs=2,
            rng=default_rng(6),
        )
        assert point.variant == "NaiveLife"
        assert point.sigma == 0.2
        assert 0.0 <= point.error_rate <= 1.0
        assert point.updates == 6 * 6 * 2 * 2
        assert point.joint_samples_per_update == 1.0

    def test_ci_zero_for_single_run(self):
        point = evaluate_variant(
            NaiveLife(0.1), 0.1, rows=5, cols=5, generations=2, runs=1,
            rng=default_rng(7),
        )
        assert point.error_ci95 == 0.0


class TestEvaluateVariants:
    def test_figure14_orderings_hold_on_small_protocol(self):
        points = evaluate_variants(
            sigmas=[0.1, 0.3],
            rng=default_rng(8),
            rows=8, cols=8, generations=3, runs=2, max_samples=200,
        )
        by = {(p.variant, p.sigma): p for p in points}
        for sigma in (0.1, 0.3):
            assert by[("SensorLife", sigma)].error_rate < by[
                ("NaiveLife", sigma)
            ].error_rate
            assert by[("BayesLife", sigma)].error_rate <= by[
                ("SensorLife", sigma)
            ].error_rate
            assert by[("BayesLife", sigma)].joint_samples_per_update < by[
                ("SensorLife", sigma)
            ].joint_samples_per_update

    def test_custom_variant_subset(self):
        points = evaluate_variants(
            sigmas=[0.2],
            variant_factories=[NaiveLife],
            rng=default_rng(9),
            rows=5, cols=5, generations=2, runs=1,
        )
        assert [p.variant for p in points] == ["NaiveLife"]
