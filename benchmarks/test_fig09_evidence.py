"""Figure 9 bench: conditionals evaluate evidence, not booleans."""

from benchmarks.conftest import run_and_report


def test_fig09_evidence(benchmark):
    run_and_report(benchmark, "fig09", fast=True)
