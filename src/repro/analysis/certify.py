"""Static stream-safety certification for the plan compiler (UNC401).

PR 5's optimizer and fused-kernel backend promise *bit-identity*: an
optimized plan or generated kernel must consume the RNG stream exactly as
the reference numpy engine would and produce identical arrays.  Until
now that promise was enforced only dynamically — probe-seed runs at
first use.  This module proves it **symbolically** where possible, so the
probe becomes a fallback for constructs the analysis cannot model rather
than the only gate.

The certifier performs a *draw-order effect analysis*: it computes the
canonical RNG consumption sequence — which generator family draws, how
many values, triggered by which slots, in which order — of the reference
plan, and checks that a rewrite or kernel provably consumes the same
sequence with the same value semantics.

What is provable, and why:

- **Rewrites** (:func:`certify_rewrite`): the optimizer may only fold,
  share, and drop *deterministic* interior nodes.  If the optimized
  plan's stochastic sources are the identical node objects in the
  identical slot order, every draw happens with the same family, count
  and position — certified.  Anything else is rejected with UNC401.
- **Coalesced bulk draws** (:func:`certify_kernel`): a kernel collapses
  a run of adjacent leaves into one ``rng.family(k * n)`` call.  numpy's
  ``Generator`` methods fill requests sequentially from one stream and
  compute ``loc + scale * draw`` per element, so the chunking is
  value-identical *provided the leaf's distribution really is* the
  claimed affine reduction of that family.  ``bulk_draw_spec`` is a
  claim, not a proof — so the certifier trusts it only for the exact
  first-party distribution classes whose ``sample_n`` provably matches
  (:data:`TRUSTED_BULK_FAMILIES`); subclasses and third-party
  distributions fall back to the probe, which catches lying specs.
- **Delegated sources** (``_S``/``_G`` slots): the kernel calls the same
  ``evaluate_batch`` the engine would, at the same position in slot
  order — stream-identical by construction.
- **Inlined scalar constants**: the engine materializes every constant
  as an ``np.full`` array while the kernel may keep it a Python scalar,
  and NEP 50 gives Python scalars *weak* promotion.  A small abstract
  dtype analysis certifies the cases where both promotions provably
  agree (see :func:`_scalar_obstacle`); everything else is probed.
- ``numexpr``-accelerated kernels may legitimately differ in the last
  ulp, so they are never statically certified.

Every decision is emitted as a :class:`CertificationRecord` into
``plan.provenance`` — ``certified`` (probe skipped), ``probe`` (dynamic
fallback), or ``rejected`` (UNC401) — and the differential harness in
``tests/analysis/test_certify.py`` asserts the certifier never accepts a
kernel the probe run would reject.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.core import fused as _fused
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.optimizer import is_stochastic
from repro.core.plan import OP_SOURCE, EvaluationPlan

__all__ = [
    "CertificationRecord",
    "DrawEvent",
    "TRUSTED_BULK_FAMILIES",
    "certification_records",
    "certify_kernel",
    "certify_rewrite",
    "certify_value",
    "plan_draw_sequence",
]

#: ``(module, qualname)`` of distribution classes whose ``sample_n`` is
#: *known* (by reading both sources) to be the exact affine reduction of
#: the named base-generator family, making coalesced draws value- and
#: stream-identical.  Exact type match only: a subclass may override
#: ``sample_n`` arbitrarily while inheriting ``bulk_draw_spec``.
TRUSTED_BULK_FAMILIES = {
    ("repro.dists.gaussian", "Gaussian"): "standard_normal",
    ("repro.dists.uniform", "Uniform"): "random",
    ("repro.dists.exponential", "Exponential"): "standard_exponential",
}


@dataclasses.dataclass(frozen=True)
class DrawEvent:
    """One entry of a plan's canonical RNG consumption sequence.

    ``count`` is in units of batch draws (one event of count ``k``
    consumes ``k * n`` values for a batch of ``n``); ``slots`` are the
    plan slots filled by the event, in consumption order.
    """

    family: str
    count: int
    slots: tuple[int, ...]

    def as_dict(self) -> dict[str, Any]:
        return {"family": self.family, "count": self.count,
                "slots": list(self.slots)}


@dataclasses.dataclass(frozen=True)
class CertificationRecord:
    """The certifier's verdict for one rewrite or kernel.

    Lives in ``plan.provenance`` next to the optimizer's ``PassRecord``s
    (the ``name`` property keys it in name-indexed provenance views).
    """

    subject: str  # "optimizer-rewrite" | "fused-kernel"
    status: str  # "certified" | "probe" | "rejected"
    structural_hash: str | None
    rule: str | None = None  # "UNC401" when rejected
    reasons: tuple[str, ...] = ()
    draw_sequence: tuple[DrawEvent, ...] = ()

    @property
    def name(self) -> str:
        return ("stream-certify" if self.subject == "optimizer-rewrite"
                else "kernel-certify")

    @property
    def certified(self) -> bool:
        return self.status == "certified"

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "subject": self.subject,
            "status": self.status,
            "structural_hash": self.structural_hash,
            "rule": self.rule,
            "reasons": list(self.reasons),
            "draw_sequence": [e.as_dict() for e in self.draw_sequence],
        }


def _trusted_family(dist) -> str | None:
    kind = type(dist)
    return TRUSTED_BULK_FAMILIES.get((kind.__module__, kind.__qualname__))


def plan_draw_sequence(plan: EvaluationPlan) -> tuple[DrawEvent, ...]:
    """The reference engines' RNG consumption sequence for ``plan``.

    Trusted bulk-reducible leaves report their base family; everything
    else that draws is ``delegated`` (consumed through the node's own
    ``evaluate_batch``, which the kernel calls identically).  Adjacent
    same-family events coalesce, mirroring what a fused kernel may merge.
    """
    events: list[DrawEvent] = []
    for step in plan.steps:
        if step.opcode != OP_SOURCE or not is_stochastic(step.node):
            continue
        node = step.node
        family = "delegated"
        if isinstance(node, LeafNode):
            family = _trusted_family(node.dist) or "delegated"
        if events and events[-1].family == family and family != "delegated":
            last = events[-1]
            events[-1] = DrawEvent(family, last.count + 1,
                                   last.slots + (step.slot,))
        else:
            events.append(DrawEvent(family, 1, (step.slot,)))
    return tuple(events)


def certify_rewrite(original: EvaluationPlan,
                    optimized: EvaluationPlan) -> CertificationRecord:
    """Certify that an optimizer rewrite preserves the RNG stream.

    The optimizer only rewrites deterministic interior structure, so the
    stream is preserved exactly when the stochastic sources are the
    *identical node objects in identical slot order* — the draw sequence
    is then the same event list by construction.  Any reordering,
    duplication or elision is rejected (UNC401).
    """
    source_of = [s.node for s in original.steps if is_stochastic(s.node)]
    rewritten = [s.node for s in optimized.steps if is_stochastic(s.node)]
    digest = optimized.structural_hash
    if source_of == rewritten:
        return CertificationRecord(
            subject="optimizer-rewrite",
            status="certified",
            structural_hash=digest,
            reasons=(
                f"stochastic source sequence preserved: {len(source_of)} "
                "source(s) in identical slot order",
            ),
            draw_sequence=plan_draw_sequence(optimized),
        )
    detail = (
        f"original plan draws from {len(source_of)} stochastic source(s), "
        f"rewrite draws from {len(rewritten)}"
        if len(source_of) != len(rewritten)
        else f"rewrite reorders the {len(source_of)} stochastic source(s)"
    )
    return CertificationRecord(
        subject="optimizer-rewrite",
        status="rejected",
        structural_hash=digest,
        rule="UNC401",
        reasons=(detail + "; the RNG consumption sequence would change",),
        draw_sequence=plan_draw_sequence(optimized),
    )


# -- abstract dtypes for inlined-scalar certification -----------------------

_FLOAT64 = np.dtype(np.float64)
_BOOL = np.dtype(np.bool_)

#: Unary ufunc labels that map {float64, int64, bool} inputs to float64.
_FLOAT_UFUNCS = frozenset({
    "sqrt", "exp", "exp2", "expm1", "log", "log2", "log10", "log1p",
    "sin", "cos", "tan", "arcsin", "arccos", "arctan", "sinh", "cosh",
    "tanh",
})

_PROMOTABLE_KINDS = "ifb"  # int64 / float64 / bool_ engine-side dtypes


def _infer_dtypes(plan: EvaluationPlan) -> list:
    """Engine-semantics result dtype per slot (``None`` = unknown).

    The reference engine materializes constants with ``np.full``, so
    array-array promotion rules apply throughout; that is the semantics
    certification compares the kernel against.
    """
    dtypes: list = [None] * len(plan.steps)
    for step in plan.steps:
        node, slot = step.node, step.slot
        if step.opcode == OP_SOURCE:
            if isinstance(node, LeafNode):
                if _trusted_family(node.dist) is not None:
                    dtypes[slot] = _FLOAT64
            elif (type(node) is PointMassNode
                  and isinstance(node.value, _fused._SCALAR_TYPES)):
                dtypes[slot] = np.asarray(node.value).dtype
            continue
        if isinstance(node, BinaryOpNode) and len(step.parent_slots) == 2:
            symbol = node.label
            if symbol in {"<", "<=", ">", ">=", "==", "!=",
                          "and", "or", "xor"}:
                dtypes[slot] = _BOOL
                continue
            a, b = (dtypes[p] for p in step.parent_slots)
            if a is None or b is None:
                continue
            if a.kind not in _PROMOTABLE_KINDS or b.kind not in _PROMOTABLE_KINDS:
                continue
            result = np.result_type(a, b)
            if symbol == "/":
                result = np.result_type(result, _FLOAT64)
            dtypes[slot] = result
        elif isinstance(node, UnaryOpNode) and len(step.parent_slots) == 1:
            if node.label == "not":
                dtypes[slot] = _BOOL
            elif node.label in {"neg", "pos", "abs", "absolute", "fabs"}:
                dtypes[slot] = dtypes[step.parent_slots[0]]
        elif (isinstance(node, ApplyNode) and len(step.parent_slots) == 1
              and node.label in _FLOAT_UFUNCS):
            operand = dtypes[step.parent_slots[0]]
            if operand is not None and operand.kind in _PROMOTABLE_KINDS:
                dtypes[slot] = _FLOAT64
    return dtypes


def _scalar_obstacle(value, other, symbol: str) -> str | None:
    """Why an inlined Python scalar might promote differently, or ``None``.

    The engine sees ``np.full(n, value)`` (strong, array-array
    promotion); the kernel sees the raw scalar (weak under NEP 50).
    Returns a probe reason when the two can disagree in dtype or value.
    """
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return None  # numpy scalars are strong: identical promotion.
    if isinstance(value, bool):
        return (f"python bool constant {value!r} inlined into {symbol!r}: "
                "weak-scalar promotion may differ from the engine's "
                "materialized array")
    if other is None:
        return (f"python scalar {value!r} inlined into {symbol!r} whose "
                "other operand has unknown dtype; weak-scalar promotion "
                "not provably identical")
    if isinstance(value, float):
        if other == _FLOAT64 or other.kind in "ib":
            return None  # both paths promote to float64 with equal values.
    elif isinstance(value, int):
        if -(2 ** 63) <= value < 2 ** 63 and (other == _FLOAT64
                                              or other.kind == "i"):
            return None  # int64/float64 promotion agrees both ways.
    return (f"python scalar {value!r} inlined into {symbol!r} against "
            f"dtype {other}: weak-scalar promotion not provably identical")


def certify_kernel(spec, plan: EvaluationPlan) -> CertificationRecord:
    """Certify a generated kernel (``fused._KernelSpec``) stream-safe.

    Certified kernels skip the probe run entirely; ``probe`` means the
    analysis could not model some construct and the dynamic bit-identity
    check must decide; ``rejected`` (UNC401) means the kernel provably
    consumes a different stream than the engine.
    """
    probe: list[str] = []
    rejected: list[str] = []
    events: list[DrawEvent] = []

    if spec.uses_numexpr:
        probe.append("numexpr-accelerated chains are not modeled "
                     "bit-exactly; probe required")

    delegated = {
        slot for slot in (set(spec.s_slots) | set(spec.g_slots))
        if is_stochastic(plan.steps[slot].node)
    }
    run_starts = {slots[0]: (family, slots) for family, slots in spec.runs}
    for step in plan.steps:
        slot = step.slot
        if slot in run_starts:
            family, slots = run_starts[slot]
            trusted = True
            for member in slots:
                dist = plan.steps[member].node.dist
                known = _trusted_family(dist)
                if known is None:
                    kind = type(dist).__name__
                    probe.append(
                        f"slot {member}: {kind}.bulk_draw_spec claims family "
                        f"{family!r} but {kind} is not a trusted first-party "
                        "reduction; the claim must be probed"
                    )
                    trusted = False
                elif known != family:
                    rejected.append(
                        f"slot {member}: {type(dist).__name__} draws from "
                        f"{known!r} but the kernel coalesces it into a "
                        f"{family!r} run"
                    )
                    trusted = False
            events.append(
                DrawEvent(family if trusted else f"untrusted:{family}",
                          len(slots), tuple(slots))
            )
        elif slot in delegated:
            events.append(DrawEvent("delegated", 1, (slot,)))

    # Interleaving: a coalesced run draws its whole block at the position
    # of its first slot, which is stream-safe only if no other RNG
    # consumer sits between the run's slots.  _generate guarantees this
    # by breaking runs at spec-less leaves; re-verify independently.
    consumers = sorted(
        [slot for _f, slots in spec.runs for slot in slots] + list(delegated)
    )
    order = {slot: i for i, slot in enumerate(consumers)}
    for _family, slots in spec.runs:
        first = order[slots[0]]
        if any(order[s] != first + i for i, s in enumerate(slots)):
            rejected.append(
                f"coalesced run {slots} is interleaved with another RNG "
                "consumer; drawing it as one block would reorder the stream"
            )

    # Inlined scalar constants vs NEP 50 weak promotion.
    materialized = {slot for slot, _parents, ops in spec.steps_meta
                    if ops == ("const",)}
    inlined = set(spec.k_slots) - materialized
    if inlined:
        dtypes = _infer_dtypes(plan)
        for step in plan.steps:
            node = step.node
            if not (isinstance(node, BinaryOpNode)
                    and len(step.parent_slots) == 2):
                continue
            if node.op in _fused._NPFUNC_BINARY:
                continue  # np.logical_* of a scalar: bool result either way.
            if node.op not in _fused._INFIX_BINARY:
                continue
            a, b = step.parent_slots
            for const_slot, other_slot in ((a, b), (b, a)):
                if const_slot not in inlined:
                    continue
                obstacle = _scalar_obstacle(
                    plan.steps[const_slot].node.value,
                    dtypes[other_slot],
                    node.label,
                )
                if obstacle is not None:
                    probe.append(obstacle)

    if rejected:
        status, rule, reasons = "rejected", "UNC401", tuple(rejected + probe)
    elif probe:
        status, rule, reasons = "probe", None, tuple(probe)
    else:
        status, rule = "certified", None
        reasons = (
            "draw sequence matches the reference engine: "
            + (", ".join(f"{e.family}×{e.count}" for e in events)
               if events else "no stochastic draws"),
        )
    return CertificationRecord(
        subject="fused-kernel",
        status=status,
        structural_hash=plan.structural_hash,
        rule=rule,
        reasons=reasons,
        draw_sequence=tuple(events),
    )


def certification_records(plan: EvaluationPlan) -> tuple[CertificationRecord, ...]:
    """All certification records attached to ``plan.provenance``."""
    return tuple(r for r in plan.provenance
                 if isinstance(r, CertificationRecord))


def certify_value(value, use_numexpr: bool = False) -> dict[str, Any]:
    """End-to-end certification of one ``Uncertain``/``Node``/plan.

    Compiles the value, runs the optimizer pipeline (collecting its
    rewrite record), generates the fused kernel for the optimized plan
    and certifies it — without ever *executing* the kernel.  Returns a
    JSON-ready report dict; the CLI ``certify`` subcommand maps over a
    corpus of these.
    """
    from repro.core.plan import compile_plan

    if isinstance(value, EvaluationPlan):
        plan = value
    else:
        plan = compile_plan(getattr(value, "node", value))
    optimized = plan.optimized(2)
    records = list(certification_records(optimized))
    if not any(r.subject == "optimizer-rewrite" for r in records):
        # A no-op optimization emits no record in provenance; the
        # identity rewrite certifies trivially.
        records.insert(0, certify_rewrite(plan, optimized))
    if any(r.subject == "fused-kernel" for r in records):
        # The fused engine already certified this plan's kernel (the
        # record rode in on provenance); don't re-derive a duplicate.
        pass
    elif optimized.structural_hash is None:
        records.append(CertificationRecord(
            subject="fused-kernel",
            status="probe",
            structural_hash=None,
            reasons=("plan is structurally opaque (lambdas or user "
                     "sampling functions): no kernel is generated and the "
                     "fused backend falls back to the numpy engine",),
        ))
    else:
        try:
            spec = _fused._generate(optimized, use_numexpr)
        except Exception as exc:
            records.append(CertificationRecord(
                subject="fused-kernel",
                status="probe",
                structural_hash=optimized.structural_hash,
                reasons=(f"kernel generation failed "
                         f"({type(exc).__name__}: {exc}); the fused "
                         "backend falls back to the numpy engine",),
            ))
        else:
            records.append(certify_kernel(spec, optimized))
    worst = "certified"
    for record in records:
        if record.status == "rejected":
            worst = "rejected"
            break
        if record.status == "probe":
            worst = "probe"
    return {
        "structural_hash": optimized.structural_hash,
        "slots": len(optimized.steps),
        "status": worst,
        "records": [r.as_dict() for r in records],
    }
