"""Tests for network pretty-printing, DOT export, and graph depth."""

import pytest

from repro.core.graph import depth
from repro.core.uncertain import Uncertain
from repro.core.viz import describe, summary, to_dot
from repro.dists import Gaussian


@pytest.fixture
def shared_expr():
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return (y + x) + x


class TestDescribe:
    def test_marks_leaves(self, shared_expr):
        text = describe(shared_expr)
        assert "(leaf)" in text
        assert "X" in text and "Y" in text

    def test_shared_nodes_marked(self, shared_expr):
        text = describe(shared_expr)
        assert "@shared" in text
        # X appears once in full, once as a reference.
        assert text.count("X #") == 1

    def test_max_depth_guard(self):
        expr = Uncertain(Gaussian(0, 1))
        for _ in range(30):
            expr = expr + 1.0
        text = describe(expr, max_depth=5)
        assert "max depth reached" in text

    def test_accepts_raw_node(self, shared_expr):
        assert describe(shared_expr.node) == describe(shared_expr)

    def test_rejects_non_node(self):
        with pytest.raises(TypeError):
            describe(42)


class TestToDot:
    def test_valid_structure(self, shared_expr):
        dot = to_dot(shared_expr)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 4  # Y->A, X->A, A->B, X->B

    def test_leaves_shaded(self, shared_expr):
        dot = to_dot(shared_expr)
        assert dot.count("fillcolor") == 2  # X and Y

    def test_quotes_escaped(self):
        u = Uncertain(Gaussian(0, 1), label='with "quotes"')
        dot = to_dot(u)
        # Quotes are backslash-escaped (DOT string syntax), preserving the
        # original label instead of rewriting it with apostrophes.
        assert 'label="with \\"quotes\\""' in dot
        assert "'quotes'" not in dot

    def test_backslashes_escaped_before_quotes(self):
        u = Uncertain(Gaussian(0, 1), label='back\\slash "q"')
        dot = to_dot(u)
        assert 'back\\\\slash \\"q\\"' in dot

    def test_point_mass_string_label_round_trips(self):
        u = Uncertain.pointmass('a "b"')
        dot = to_dot(u)
        # repr of the string contains quotes; they must be escaped so the
        # label attribute stays a single well-formed DOT string.
        assert '\\"b\\"' in dot


class TestSummary:
    def test_counts(self, shared_expr):
        info = summary(shared_expr)
        assert info == {"nodes": 4, "leaves": 2, "depth": 2, "root": "+"}

    def test_single_leaf(self):
        info = summary(Uncertain(Gaussian(0, 1)))
        assert info["nodes"] == 1 and info["depth"] == 0


class TestDepth:
    def test_diamond(self):
        # x feeds both arms of a diamond; depth is the longest path.
        x = Uncertain(Gaussian(0, 1))
        left = x + 1.0            # depth 1
        right = (x * 2.0) + 3.0   # depth 2
        top = left + right        # diamond apex: depth 3
        assert depth(top.node) == 3

    def test_diamond_depth_counts_longest_arm_only_once(self):
        x = Uncertain(Gaussian(0, 1))
        inner = x + x            # one shared node, used by both apex operands
        top = inner + inner
        assert depth(top.node) == 2
        assert summary(top)["nodes"] == 3  # leaf, inner sum, apex

    def test_nested_diamonds(self):
        x = Uncertain(Gaussian(0, 1))
        d1 = (x + 1.0) + (x - 1.0)
        d2 = (d1 * 2.0) + (d1 / 2.0)
        assert depth(d2.node) == 4
        assert summary(d2)["depth"] == 4
