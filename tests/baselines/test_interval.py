"""Tests for the interval-analysis baseline."""

import pytest

from repro.baselines.interval import Interval


class TestConstruction:
    def test_from_value(self):
        i = Interval.from_value(3.0)
        assert i.lo == i.hi == 3.0
        assert i.width == 0.0

    def test_from_center(self):
        i = Interval.from_center(5.0, 2.0)
        assert i.lo == 3.0 and i.hi == 7.0
        assert i.midpoint == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval.from_center(0.0, -1.0)
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)


class TestArithmetic:
    def test_paper_example(self):
        # "if X = [4, 6], then X/2 = [2, 3]" (Section 6).
        x = Interval(4.0, 6.0)
        half = x / 2.0
        assert half.lo == 2.0 and half.hi == 3.0

    def test_add_sub(self):
        a, b = Interval(1.0, 2.0), Interval(10.0, 20.0)
        assert (a + b) == Interval(11.0, 22.0)
        assert (b - a) == Interval(8.0, 19.0)

    def test_mul_sign_handling(self):
        a = Interval(-2.0, 3.0)
        b = Interval(-1.0, 4.0)
        assert (a * b) == Interval(-8.0, 12.0)

    def test_division_by_zero_straddling(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1.0, 2.0) / Interval(-1.0, 1.0)

    def test_scalar_coercion(self):
        assert (1.0 + Interval(0.0, 1.0)) == Interval(1.0, 2.0)
        assert (10.0 - Interval(1.0, 2.0)) == Interval(8.0, 9.0)
        assert (6.0 / Interval(2.0, 3.0)) == Interval(2.0, 3.0)

    def test_abs(self):
        assert abs(Interval(-3.0, 2.0)) == Interval(0.0, 3.0)
        assert abs(Interval(1.0, 2.0)) == Interval(1.0, 2.0)
        assert abs(Interval(-2.0, -1.0)) == Interval(1.0, 2.0)

    def test_dependency_problem(self):
        # The baseline's known weakness: x - x is not zero.
        x = Interval(4.0, 6.0)
        diff = x - x
        assert diff.width == 4.0  # [-2, 2] — Uncertain<T> gets exactly 0


class TestComparisons:
    def test_tristate(self):
        i = Interval(3.0, 5.0)
        assert i.definitely_greater(2.0)
        assert i.definitely_less(6.0)
        assert not i.definitely_greater(4.0)
        assert i.possibly_greater(4.0)

    def test_no_evidence_available(self):
        # Intervals cannot grade: a threshold inside the interval is simply
        # "possible", regardless of where the mass lies.
        wide = Interval(0.0, 100.0)
        narrow = Interval(49.0, 51.0)
        assert wide.possibly_greater(50.0) == narrow.possibly_greater(50.0)

    def test_contains(self):
        assert Interval(1.0, 2.0).contains(1.5)
        assert not Interval(1.0, 2.0).contains(2.5)
