"""Figures 11-12: the Rayleigh GPS posterior and GPS.GetLocation."""

from __future__ import annotations

import math

import numpy as np

from repro.dists.rayleigh import Rayleigh
from repro.experiments.base import ExperimentResult, experiment
from repro.gps.geo import GeoCoordinate, enu_distance_m
from repro.gps.sensor import GpsFix, gps_posterior, rayleigh_scale
from repro.rng import default_rng


@experiment("fig11")
def run(seed: int = 11, fast: bool = True) -> ExperimentResult:
    """Check the GPS posterior's ring structure (Figure 11).

    The true location is *unlikely to be at the centre* of the reported
    fix: the radial error density peaks at the Rayleigh scale, not zero,
    and 95% of the mass lies within the reported horizontal accuracy.
    """
    rng = default_rng(seed)
    n = 20_000 if fast else 200_000
    epsilon = 4.0
    rho = rayleigh_scale(epsilon)
    radial = Rayleigh.from_95ci(epsilon)

    fix = GpsFix(GeoCoordinate(47.64, -122.13), epsilon, 0.0)
    location = gps_posterior(fix)
    samples = location.samples(n, rng)
    distances = np.asarray(
        [enu_distance_m(fix.coordinate, s) for s in samples[: min(n, 5_000)]]
    )

    rows = [
        {
            "quantity": "Rayleigh scale rho (m)",
            "value": rho,
            "expected": epsilon / math.sqrt(math.log(400.0)),
        },
        {
            "quantity": "Pr[error <= epsilon] (should be 0.95)",
            "value": float(radial.cdf(epsilon)),
            "expected": 0.95,
        },
        {
            "quantity": "modal radial error (m, peak of the ring)",
            "value": float(np.median(distances) / math.sqrt(math.log(4.0))),
            "expected": rho,
        },
        {
            "quantity": "mean sampled distance from fix (m)",
            "value": float(distances.mean()),
            "expected": radial.mean,
        },
        {
            "quantity": "Pr[error < rho/2] (centre is unlikely)",
            "value": float(np.mean(distances < rho / 2)),
            "expected": float(radial.cdf(rho / 2)),
        },
    ]
    claims = {
        "95% of mass within the reported accuracy radius": abs(
            rows[1]["value"] - 0.95
        )
        < 1e-9,
        "sampled radial distances match the Rayleigh model": abs(
            rows[3]["value"] - radial.mean
        )
        < 0.1,
        "the true location is unlikely to be the fix itself": rows[4]["value"] < 0.2,
    }
    return ExperimentResult(
        "fig11", "GPS posterior is a ring, not a point", rows, claims
    )
