"""Unit conversions used throughout the GPS case study."""

MPS_TO_MPH = 2.2369362920544025
MPH_TO_MPS = 1.0 / MPS_TO_MPH

#: Average human walking speed (paper, Section 2).
AVERAGE_WALK_MPH = 3.0
#: Running pace threshold the paper uses when counting absurd readings.
RUNNING_MPH = 7.0
#: GPS-Walking's encouragement threshold (Figure 5).
TARGET_WALK_MPH = 4.0


def mps_to_mph(mps: float) -> float:
    return mps * MPS_TO_MPH


def mph_to_mps(mph: float) -> float:
    return mph * MPH_TO_MPS
