"""Figure 16: precision and recall versus the conditional threshold alpha."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fig15_ppd import trained_models
from repro.ml.evaluation import parrot_point, precision_recall_sweep


@experiment("fig16")
def run(seed: int = 15, fast: bool = True) -> ExperimentResult:
    """The developer-selectable precision/recall tradeoff.

    Paper: Parrot locks developers into one balance (100% recall, 64%
    precision — over-reporting edges); Parakeet's threshold alpha trades
    recall for precision.  Our Parakeet curve at low alpha lands close to
    the paper's Parrot point, and precision rises monotonically with alpha.
    """
    _, _, x_eval, t_eval, parrot, parakeet = trained_models(seed, fast)
    alphas = tuple(np.round(np.arange(0.1, 0.91, 0.1), 2))
    sweep = precision_recall_sweep(parakeet, x_eval, t_eval, alphas=alphas)
    parrot_pt = parrot_point(parrot, x_eval, t_eval)

    rows = [
        {
            "detector": "Parrot (fixed)",
            "alpha": "-",
            "precision": parrot_pt.precision,
            "recall": parrot_pt.recall,
        }
    ]
    rows += [
        {
            "detector": "Parakeet",
            "alpha": p.alpha,
            "precision": p.precision,
            "recall": p.recall,
        }
        for p in sweep
    ]

    precisions = [p.precision for p in sweep]
    recalls = [p.recall for p in sweep]
    claims = {
        "precision rises (weakly) with alpha": all(
            a <= b + 0.02 for a, b in zip(precisions, precisions[1:])
        ),
        "recall falls (weakly) with alpha": all(
            a >= b - 0.02 for a, b in zip(recalls, recalls[1:])
        ),
        "developers can reach near-perfect recall at low alpha": recalls[0] > 0.95,
        "developers can reach near-perfect precision at high alpha": precisions[-1]
        > 0.95,
        "the curve spans a real tradeoff (not a single point)": (
            recalls[0] - recalls[-1] > 0.1 or precisions[-1] - precisions[0] > 0.1
        ),
    }
    return ExperimentResult(
        "fig16", "precision/recall vs conditional threshold", rows, claims
    )
