"""Figure 17: generative-PPL inference cost vs Uncertain's conditionals."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.ppl.alarm import exact_alarm_probability, run_alarm_comparison
from repro.rng import default_rng


@experiment("fig17")
def run(seed: int = 17, fast: bool = True) -> ExperimentResult:
    """The alarm example's inference economics.

    Paper: Pr[alarm] ~ 0.11%, so rejection-style inference has a poor
    acceptance rate (Church took 20 s for 100 samples).  Uncertain<T>'s
    conditional over the (conditional) distribution needs only the handful
    of samples its SPRT requests.
    """
    n_posterior = 50 if fast else 100
    comparison = run_alarm_comparison(n_posterior, rng=default_rng(seed))
    rejection = comparison.rejection
    rows = [
        {
            "quantity": "exact Pr[alarm]",
            "value": exact_alarm_probability(),
        },
        {
            "quantity": "rejection acceptance rate",
            "value": rejection.acceptance_rate,
        },
        {
            "quantity": "model executions for posterior samples",
            "value": rejection.executions,
        },
        {
            "quantity": "posterior samples obtained",
            "value": len(rejection.samples),
        },
        {
            "quantity": "exact Pr[phoneWorking | alarm]",
            "value": comparison.exact_posterior,
        },
        {
            "quantity": "rejection estimate of the posterior",
            "value": comparison.rejection_estimate,
        },
        {
            "quantity": "Uncertain conditional samples (SPRT)",
            "value": comparison.uncertain_samples,
        },
    ]
    claims = {
        "the acceptance rate is ~0.11% as the paper reports": 0.0003
        < rejection.acceptance_rate
        < 0.004,
        "rejection needs hundreds of executions per posterior sample": rejection.executions
        > 100 * len(rejection.samples),
        "the Uncertain conditional needs orders of magnitude fewer samples": comparison.uncertain_samples
        * 100
        < rejection.executions,
        "the conditional reaches the right decision": comparison.uncertain_decision
        is True,
    }
    return ExperimentResult(
        "fig17", "generative inference cost vs goal-directed sampling", rows, claims
    )
