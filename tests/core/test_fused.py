"""Tests for the fused-kernel backend (stage 3 of the plan compiler).

The acceptance property: for any plan the fused engine either produces a
bit-identical stream to the reference engines (verified kernel) or falls
back to the inner numpy engine — never a silently different stream.
"""

import numpy as np
import pytest

from repro.core import fused as fused_mod
from repro.core.conditionals import evaluation_config
from repro.core.engines import InterpreterEngine, NumpyEngine, get_engine
from repro.core.fused import (
    FusedEngine,
    FusedFallbackWarning,
    FusedProgram,
    clear_kernel_cache,
    fused_program,
    kernel_cache_stats,
)
from repro.core.joint import correlated_gaussians
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists.exponential import Exponential
from repro.dists.gaussian import Gaussian
from repro.dists.uniform import Uniform
from repro.runtime.metrics import RuntimeMetrics


@pytest.fixture(autouse=True)
def _fresh_kernels():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


def fig08_plan():
    """The paper's Figure 8 dependence example: b = (y + x) + x."""
    x = Uncertain(Gaussian(0.0, 1.0))
    y = Uncertain(Gaussian(0.0, 2.0))
    return compile_plan(((y + x) + x).node)


def gps_speed():
    """A fig08-shaped GPS speed expression over mixed distributions."""
    x1 = Uncertain(Gaussian(10.0, 3.0))
    y1 = Uncertain(Gaussian(20.0, 3.0))
    x2 = Uncertain(Gaussian(14.0, 3.0))
    y2 = Uncertain(Gaussian(24.0, 3.0))
    dt = Uncertain(Uniform(0.9, 1.1))
    drift = Uncertain(Exponential(4.0))
    dx = x2 - x1
    dy = y2 - y1
    dist = (dx * dx + dy * dy).map(np.sqrt, vectorized=True) + drift
    return dist / dt


def run_all_engines(plan, n, seed):
    opt = plan.optimized(2)
    out_f = get_engine("fused").run(opt, n, np.random.default_rng(seed))[
        opt.root_slot
    ]
    out_n = NumpyEngine().run(opt, n, np.random.default_rng(seed))[
        opt.root_slot
    ]
    out_i = InterpreterEngine().run(plan, n, np.random.default_rng(seed))[
        plan.root_slot
    ]
    return out_f, out_n, out_i


class TestEquivalence:
    def test_fig08_bit_identical_across_backends(self):
        plan = fig08_plan()
        for seed in (0, 12345, 2026):
            out_f, out_n, out_i = run_all_engines(plan, 257, seed)
            np.testing.assert_array_equal(out_f, out_n)
            np.testing.assert_array_equal(out_f, out_i)
            assert out_f.dtype == out_n.dtype

    def test_mixed_distributions_and_ufunc_apply(self):
        plan = compile_plan(gps_speed().node)
        for seed in (7, 99):
            out_f, out_n, out_i = run_all_engines(plan, 64, seed)
            np.testing.assert_array_equal(out_f, out_n)
            np.testing.assert_array_equal(out_f, out_i)

    def test_comparison_roots_produce_bool_batches(self):
        y = gps_speed() > 4.0
        plan = compile_plan(y.node)
        out_f, out_n, out_i = run_all_engines(plan, 100, 3)
        assert out_f.dtype == np.bool_
        np.testing.assert_array_equal(out_f, out_n)
        np.testing.assert_array_equal(out_f, out_i)

    def test_joint_components_share_one_draw(self):
        a, b = correlated_gaussians(
            [0.0, 0.0], np.array([[1.0, 0.8], [0.8, 1.0]])
        )
        plan = compile_plan((a + b).node)
        out_f, out_n, out_i = run_all_engines(plan, 50, 17)
        np.testing.assert_array_equal(out_f, out_n)
        np.testing.assert_array_equal(out_f, out_i)

    def test_division_by_zero_propagates_ieee(self):
        zero = Uncertain(Gaussian(0.0, 0.0))  # degenerate: always 0
        y = Uncertain(Gaussian(1.0, 1.0)) / zero
        plan = compile_plan(y.node)
        out_f, out_n, _ = run_all_engines(plan, 16, 5)
        np.testing.assert_array_equal(out_f, out_n)
        assert np.all(np.isinf(out_f) | np.isnan(out_f))

    def test_sequential_batches_advance_the_stream_identically(self):
        # The SPRT draws many small batches through one generator; the
        # fused engine must consume the stream exactly like numpy does.
        plan = compile_plan(gps_speed().node).optimized(2)
        rng_f = np.random.default_rng(21)
        rng_n = np.random.default_rng(21)
        eng = get_engine("fused")
        ref = NumpyEngine()
        for n in (10, 10, 7, 33, 10):
            np.testing.assert_array_equal(
                eng.run(plan, n, rng_f)[plan.root_slot],
                ref.run(plan, n, rng_n)[plan.root_slot],
            )

    def test_sample_facade_with_fused_engine_config(self):
        y = gps_speed()
        with evaluation_config(engine="fused"):
            got = y.samples(40, rng=np.random.default_rng(8))
        want = NumpyEngine().run(
            y.plan.optimized(2), 40, np.random.default_rng(8)
        )[y.plan.optimized(2).root_slot]
        np.testing.assert_array_equal(got, want)


class TestFallbacks:
    def test_opaque_plan_falls_back_to_inner(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x.map(lambda v: v * 2.0, vectorized=True)
        plan = compile_plan(y.node)
        eng = get_engine("fused")
        out = eng.run(plan, 12, np.random.default_rng(1))[plan.root_slot]
        ref = NumpyEngine().run(plan, 12, np.random.default_rng(1))[
            plan.root_slot
        ]
        np.testing.assert_array_equal(out, ref)
        assert fused_program(plan) is None

    def test_lying_bulk_draw_spec_is_rejected_not_trusted(self):
        class LyingGaussian(Gaussian):
            def bulk_draw_spec(self):
                # Claims an affine reduction that does NOT reproduce
                # sample_n: verification must catch the divergence.
                return ("standard_normal", self.mu + 100.0, self.sigma)

        y = Uncertain(LyingGaussian(0.0, 1.0)) + 1.0
        plan = compile_plan(y.node)
        metrics = RuntimeMetrics()
        with evaluation_config(metrics=metrics):
            with pytest.warns(FusedFallbackWarning, match="rejected") as rec:
                out = get_engine("fused").run(
                    plan, 20, np.random.default_rng(2)
                )[plan.root_slot]
        ref = NumpyEngine().run(plan, 20, np.random.default_rng(2))[
            plan.root_slot
        ]
        np.testing.assert_array_equal(out, ref)
        assert metrics.snapshot()["fused"]["kernels_rejected"] == 1
        # LyingGaussian is a subclass, so the static certifier defers to
        # the probe rather than trusting the claimed family — and the
        # rejection message must say why the probe ran (UNC401 context).
        message = str(rec[0].message)
        assert "UNC401" in message
        assert "not a trusted" in message
        # The rejection is sticky for the shape: no retry, still correct.
        out2 = get_engine("fused").run(plan, 20, np.random.default_rng(2))[
            plan.root_slot
        ]
        np.testing.assert_array_equal(out2, ref)

    def test_memo_and_telemetry_paths_delegate_to_inner(self):
        from repro.core.plan import PlanTelemetry
        from repro.core.sampling import SampleContext

        x = Uncertain(Gaussian(0.0, 1.0))
        y = x + 1.0
        ctx = SampleContext(n=6, rng=np.random.default_rng(9))
        with evaluation_config(engine="fused"):
            y_vals = y.sample_with(ctx)
            x_vals = x.sample_with(ctx)
        np.testing.assert_array_equal(y_vals, x_vals + 1.0)
        plan = compile_plan(y.node)
        telemetry = PlanTelemetry()
        get_engine("fused").run(
            plan, 5, np.random.default_rng(0), telemetry=telemetry
        )
        assert telemetry.nodes_evaluated > 0

    def test_numexpr_request_degrades_gracefully(self):
        # numexpr is not installed in the test environment: asking for it
        # must warn and fall back to plain-numpy kernels, not crash.
        if fused_mod._numexpr() is not None:
            pytest.skip("numexpr installed; degradation path not reachable")
        with pytest.warns(FusedFallbackWarning, match="numexpr"):
            eng = FusedEngine(use_numexpr=True)
        plan = compile_plan(gps_speed().node).optimized(2)
        out = eng.run(plan, 30, np.random.default_rng(4))[plan.root_slot]
        ref = NumpyEngine().run(plan, 30, np.random.default_rng(4))[
            plan.root_slot
        ]
        np.testing.assert_array_equal(out, ref)


class TestKernelCache:
    def test_isomorphic_plans_share_one_kernel(self):
        metrics = RuntimeMetrics()
        with evaluation_config(metrics=metrics):
            p1 = compile_plan(gps_speed().node).optimized(2)
            p2 = compile_plan(gps_speed().node).optimized(2)
            eng = get_engine("fused")
            out1 = eng.run(p1, 44, np.random.default_rng(6))[p1.root_slot]
            out2 = eng.run(p2, 44, np.random.default_rng(6))[p2.root_slot]
        np.testing.assert_array_equal(out1, out2)
        snap = metrics.snapshot()["fused"]
        assert snap["kernels_built"] == 1
        assert snap["kernel_hits"] == 1
        # Every distribution here has a trusted bulk family, so the kernel
        # certifies statically and the probe run is skipped entirely.
        assert snap["kernels_certified"] == 1
        assert snap["kernels_probed"] == 0
        assert kernel_cache_stats()["size"] == 1
        assert kernel_cache_stats()["verified"] == 1
        assert kernel_cache_stats()["certified"] == 1

    def test_kernel_reused_across_batches_without_rebuild(self):
        metrics = RuntimeMetrics()
        plan = compile_plan(gps_speed().node).optimized(2)
        eng = get_engine("fused")
        with evaluation_config(metrics=metrics):
            rng = np.random.default_rng(0)
            for _ in range(5):
                eng.run(plan, 10, rng)
        assert metrics.snapshot()["fused"]["kernels_built"] == 1


class TestIntrospection:
    def test_program_renders_coalesced_draws_and_chains(self):
        plan = compile_plan(gps_speed().node).optimized(2)
        get_engine("fused").run(plan, 8, np.random.default_rng(0))
        prog = fused_program(plan)
        assert isinstance(prog, FusedProgram)
        hist = prog.op_histogram()
        assert hist["standard_normal"] == 4  # one coalesced 4-leaf draw
        assert hist["-"] == 2 and hist["+"] >= 2 and hist["/"] == 1
        assert "rng.standard_normal(4 * n)" in prog.source

    def test_fused_step_repr_lists_constituent_ops(self):
        plan = compile_plan(gps_speed().node).optimized(2)
        prog = fused_program(plan)
        reprs = [repr(s) for s in prog.steps]
        assert any("standard_normal ×4" in r for r in reprs)
        assert any("FusedStep" in r for r in reprs)
        described = prog.describe()
        assert "generated source" in described

    def test_plain_plan_steps_unaffected(self):
        plan = compile_plan((Uncertain(Gaussian(0, 1)) + 1.0).node)
        assert "PlanStep" in repr(plan.steps[0])
        assert plan.op_histogram()  # per-kind histogram still works
