"""Related-work baselines the paper contrasts Uncertain<T> against
(Section 6), implemented so the comparisons are measurable:

- :mod:`repro.baselines.interval` — interval analysis (Moore 1966):
  simple and fast, but treats every variable as bounds with no
  distributional structure, so it cannot express evidence and its bounds
  explode under dependent computation.
- :mod:`repro.baselines.ces` — CES-style ``prob<T>`` (Thrun 2000): exact
  discrete distributions as (value, probability) lists; expressive for
  small discrete domains but the support size multiplies under every
  binary operation and continuous distributions are out of reach.
"""

from repro.baselines.interval import Interval
from repro.baselines.ces import ProbT

__all__ = ["Interval", "ProbT"]
