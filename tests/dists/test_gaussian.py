"""Tests for Gaussian, TruncatedGaussian, MultivariateGaussian."""

import math

import numpy as np
import pytest

from repro.dists import Gaussian, MultivariateGaussian, TruncatedGaussian


class TestGaussian:
    def test_moments(self):
        g = Gaussian(2.0, 3.0)
        assert g.mean == 2.0
        assert g.variance == 9.0

    def test_sampled_moments(self, fixed_rng):
        g = Gaussian(-1.0, 0.5)
        samples = g.sample_n(50_000, fixed_rng)
        assert np.mean(samples) == pytest.approx(-1.0, abs=0.02)
        assert np.std(samples) == pytest.approx(0.5, abs=0.02)

    def test_pdf_peak_at_mean(self):
        g = Gaussian(1.0, 2.0)
        assert g.pdf(1.0) == pytest.approx(1.0 / (2.0 * math.sqrt(2 * math.pi)))

    def test_cdf_at_mean(self):
        assert Gaussian(5.0, 1.0).cdf(5.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        g = Gaussian(0.0, 1.0)
        assert float(g.cdf(1.0) + g.cdf(-1.0)) == pytest.approx(1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            Gaussian(0.0, -1.0)

    def test_degenerate_sigma_zero(self, rng):
        g = Gaussian(4.0, 0.0)
        assert np.all(g.sample_n(10, rng) == 4.0)
        with pytest.raises(NotImplementedError):
            g.log_pdf(4.0)

    def test_degenerate_cdf_is_step(self):
        g = Gaussian(4.0, 0.0)
        assert float(g.cdf(3.9)) == 0.0
        assert float(g.cdf(4.0)) == 1.0


class TestTruncatedGaussian:
    def test_samples_within_bounds(self, rng):
        t = TruncatedGaussian(0.0, 5.0, -1.0, 2.0)
        samples = t.sample_n(5_000, rng)
        assert samples.min() >= -1.0 and samples.max() <= 2.0

    def test_support(self):
        t = TruncatedGaussian(3.0, 1.5, 0.0, 10.0)
        assert t.support.lower == 0.0 and t.support.upper == 10.0

    def test_mean_shifts_toward_window(self):
        # Truncating N(0,1) to [1, 5] pushes the mean above 1.
        t = TruncatedGaussian(0.0, 1.0, 1.0, 5.0)
        assert t.mean > 1.0

    def test_pdf_zero_outside(self):
        t = TruncatedGaussian(0.0, 1.0, -1.0, 1.0)
        assert float(t.pdf(2.0)) == 0.0

    def test_pdf_integrates_to_one(self):
        t = TruncatedGaussian(0.0, 1.0, -1.0, 1.0)
        xs = np.linspace(-1.0, 1.0, 2_001)
        integral = np.trapezoid(t.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            TruncatedGaussian(0.0, 1.0, 2.0, 1.0)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            TruncatedGaussian(0.0, 0.0, 0.0, 1.0)

    def test_sampled_mean_matches_analytic(self, fixed_rng):
        t = TruncatedGaussian(3.0, 1.5, 0.0, 6.0)
        samples = t.sample_n(50_000, fixed_rng)
        assert np.mean(samples) == pytest.approx(t.mean, abs=0.03)


class TestMultivariateGaussian:
    def test_sample_shape(self, rng):
        mvn = MultivariateGaussian([0.0, 0.0], np.eye(2))
        assert mvn.sample_n(100, rng).shape == (100, 2)

    def test_single_sample_is_vector(self, rng):
        mvn = MultivariateGaussian([0.0, 1.0], np.eye(2))
        assert mvn.sample(rng).shape == (2,)

    def test_sampled_covariance(self, fixed_rng):
        cov = np.array([[2.0, 0.8], [0.8, 1.0]])
        mvn = MultivariateGaussian([1.0, -1.0], cov)
        samples = mvn.sample_n(100_000, fixed_rng)
        assert np.allclose(np.cov(samples.T), cov, atol=0.05)
        assert np.allclose(samples.mean(axis=0), [1.0, -1.0], atol=0.02)

    def test_bad_cov_shape_rejected(self):
        with pytest.raises(ValueError):
            MultivariateGaussian([0.0, 0.0], np.eye(3))

    def test_bad_mean_shape_rejected(self):
        with pytest.raises(ValueError):
            MultivariateGaussian(np.zeros((2, 2)), np.eye(2))

    def test_log_pdf_matches_scipy(self):
        mvn = MultivariateGaussian([0.0, 0.0], np.eye(2))
        expected = -math.log(2 * math.pi)  # density at the mean
        assert mvn.log_pdf([0.0, 0.0]) == pytest.approx(expected)
