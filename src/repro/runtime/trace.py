"""Opt-in span tracing for the sampling runtime.

Where :mod:`repro.runtime.metrics` aggregates counters, the tracer keeps
the individual events: every plan compile, engine batch, hypothesis test
and expectation becomes a :class:`Span` with a name, start time, duration
and free-form attributes, nested under whatever span was open when it
started.  Export the result as JSON (``tracer.export(path)``) to see the
exact sampling timeline of, say, one ``pr()`` call.

Tracing is **off by default** — the runtime asks :func:`get_tracer` and
skips all bookkeeping when it returns ``None``.  Enable it either
explicitly::

    from repro.runtime import Tracer, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    ...        # run uncertain computations
    set_tracer(None)
    tracer.export("trace.json")

or scoped::

    with tracing() as tracer:
        ...
    print(tracer.to_json())

Timestamps are ``time.perf_counter`` seconds, relative to the tracer's
creation, so spans from one tracer are mutually comparable but not wall
clock.  This module must stay import-light (stdlib only): every
``repro.core`` module imports it.
"""

from __future__ import annotations

import contextlib
import json
import threading
from time import perf_counter
from typing import Iterator


class Span:
    """One traced operation: name, start, duration, attrs, parent link."""

    __slots__ = ("id", "parent", "name", "start", "duration", "attrs")

    def __init__(
        self,
        id: int,
        parent: int | None,
        name: str,
        start: float,
        duration: float,
        attrs: dict,
    ) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span #{self.id} {self.name!r} {self.duration * 1e3:.3f}ms>"


class Tracer:
    """Collects :class:`Span` records with parent/child nesting.

    Thread-safe for recording; nesting is tracked per-thread so spans
    opened on different threads do not adopt each other as parents.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = perf_counter()
        self._next_id = 0
        self.spans: list[Span] = []

    # -- recording ----------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextlib.contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Open a span around a block; yields the attrs dict for updates::

            with tracer.span("sprt.run", threshold=0.5) as span_attrs:
                ...
                span_attrs["decision"] = str(result.decision)
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack.append(span_id)
        start = perf_counter()
        try:
            yield attrs
        finally:
            duration = perf_counter() - start
            stack.pop()
            with self._lock:
                self.spans.append(
                    Span(span_id, parent, name, start - self._epoch, duration, attrs)
                )

    def record(self, name: str, start: float, duration: float, **attrs) -> None:
        """Record an already-measured interval (``start`` in perf_counter
        seconds) as a child of the currently open span, if any."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self.spans.append(
                Span(span_id, parent, name, start - self._epoch, duration, attrs)
            )

    # -- export -------------------------------------------------------------

    def as_dicts(self) -> list[dict]:
        with self._lock:
            return [span.as_dict() for span in self.spans]

    def to_json(self, indent: int | None = None) -> str:
        """JSON document ``{"schema": "repro.trace/1", "spans": [...]}``."""
        return json.dumps(
            {"schema": "repro.trace/1", "spans": self.as_dicts()},
            indent=indent,
            default=str,
        )

    def export(self, path) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2))

    def reset(self) -> None:
        with self._lock:
            self.spans = []
            self._next_id = 0
            self._epoch = perf_counter()

    def __len__(self) -> int:
        return len(self.spans)


# ---------------------------------------------------------------------------
# Active-tracer plumbing.  A module global rather than a contextvar: the
# runtime is process-wide (like the engine registry), and a global keeps the
# disabled-path cost to one LOAD_GLOBAL per call site.
# ---------------------------------------------------------------------------

_active_tracer: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide tracer; returns the previous."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


def get_tracer() -> Tracer | None:
    """The currently installed tracer, or ``None`` when tracing is off."""
    return _active_tracer


@contextlib.contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope a tracer: install on entry, restore the previous on exit."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextlib.contextmanager
def span(name: str, **attrs) -> Iterator[dict]:
    """Module-level convenience: a span on the active tracer, or a no-op."""
    tracer = _active_tracer
    if tracer is None:
        yield attrs
    else:
        with tracer.span(name, **attrs) as span_attrs:
            yield span_attrs


def event(name: str, **attrs) -> None:
    """Record a point event (zero-duration span) on the active tracer.

    The resilience layer uses these for retries, breaker transitions,
    fallback draws, non-finite detections and inconclusive decisions —
    things that *happen* rather than *take time*.  No-op when tracing is
    off.
    """
    tracer = _active_tracer
    if tracer is not None:
        tracer.record(name, perf_counter(), 0.0, **attrs)
