"""Text and JSON rendering of analysis diagnostics.

Both passes produce :class:`~repro.analysis.diagnostics.Diagnostic`
records; this module turns them into the two consumer formats — a
human-readable listing (one line per finding, ``path:line:col`` prefixes
for lints, slot references for graph findings) and a JSON document stable
enough for CI artifacts.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Diagnostic]) -> str:
    """One line per finding plus a closing summary line."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.severity}: {finding.message}"
        for finding in findings
    ]
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    if findings:
        summary = ", ".join(
            f"{counts[sev]} {sev}(s)" for sev in ("error", "warning", "info")
            if sev in counts
        )
        lines.append(f"found {len(findings)} issue(s): {summary}")
    else:
        lines.append("no issues found")
    return "\n".join(lines)


def render_json(findings: Iterable[Diagnostic], **meta) -> str:
    """JSON document: ``{"version": 1, "findings": [...], ...meta}``."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.as_dict() for finding in findings],
    }
    payload.update(meta)
    return json.dumps(payload, indent=2, sort_keys=True)


def render_certification_text(reports: dict[str, dict]) -> str:
    """Human-readable listing of per-target certification reports.

    ``reports`` maps target name to the dict produced by
    :func:`repro.analysis.certify.certify_value` (plus optional
    ``elapsed_ms``).  One block per target, one line per record, and a
    closing tally of certified / probe / rejected verdicts.
    """
    lines: list[str] = []
    tally = {"certified": 0, "probe": 0, "rejected": 0}
    for name, report in reports.items():
        tally[report["status"]] = tally.get(report["status"], 0) + 1
        timing = (f", {report['elapsed_ms']:.3f} ms"
                  if "elapsed_ms" in report else "")
        lines.append(
            f"{name}: {report['status']} "
            f"({report['slots']} slot(s){timing})"
        )
        for record in report["records"]:
            rule = f" [{record['rule']}]" if record.get("rule") else ""
            lines.append(
                f"  {record['name']}: {record['status']}{rule} — "
                + "; ".join(record["reasons"])
            )
    lines.append(
        f"certified {tally['certified']}, probe {tally['probe']}, "
        f"rejected {tally['rejected']} of {len(reports)} plan(s)"
    )
    return "\n".join(lines)


def render_certification_json(reports: dict[str, dict]) -> str:
    """JSON document for the CI artifact: per-target certification."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "mode": "certify",
        "targets": reports,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
