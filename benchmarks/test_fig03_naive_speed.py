"""Figure 3 bench: naive GPS speed computation produces absurd speeds.

Besides regenerating the figure's statistics, this bench exercises the
naive-vs-batched sampling comparison that motivates Section 4.2's batched
runtime, through the plan/engine layer: the same GPS speed network is
sampled one joint sample at a time (the naive strategy — a batch of one
per draw) and as single vectorized batches through its compiled plan.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_and_report
from repro.core.conditionals import evaluation_config
from repro.core.plan import compile_plan
from repro.gps.sensor import GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.gps.walking import uncertain_speed_mph
from repro.rng import default_rng


def test_fig03_naive_speed(benchmark):
    run_and_report(benchmark, "fig03", fast=True)


def _speed_network():
    """The real Figure 5(b) speed network from two noisy fixes."""
    trace = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(5))
    sensor = GpsSensor(epsilon_m=4.0, rng=default_rng(6))
    fixes = [
        sensor.measure(pos, timestamp=t)
        for t, pos in zip(trace.timestamps[:2], trace.positions[:2])
    ]
    return uncertain_speed_mph(fixes[0], fixes[1])


def test_fig03_naive_vs_batched_sampling(benchmark):
    """Batched plan execution beats one-sample-at-a-time by a wide margin.

    The naive strategy draws each joint sample in its own batch of one —
    per-sample graph dispatch, n times.  The batched strategy replays the
    compiled plan once with vectorized numpy.  Both go through the engine
    layer, so the difference isolated here is per-draw overhead.
    """
    speed = _speed_network()
    plan = compile_plan(speed.node)
    assert plan.num_slots >= 5
    n = 2_000

    def naive(rng):
        return np.array([speed.sample(rng) for _ in range(n)])

    def batched(rng):
        return speed.samples(n, rng)

    with evaluation_config(engine="numpy"):
        # Warm-up compiles the plan and the program specialization.
        naive_out = naive(default_rng(1))
        batched_out = batched(default_rng(1))
        assert naive_out.shape == batched_out.shape == (n,)
        assert np.all(naive_out >= 0) and np.all(batched_out >= 0)

        naive_s = batched_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            naive(default_rng(2))
            naive_s = min(naive_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            batched(default_rng(2))
            batched_s = min(batched_s, time.perf_counter() - t0)

        result = benchmark.pedantic(
            lambda: batched(default_rng(3)), rounds=3, iterations=1
        )
    assert result.shape == (n,)
    print()
    print(
        f"fig03 sampling: naive {naive_s * 1e3:.1f} ms vs batched "
        f"{batched_s * 1e3:.2f} ms for n={n} ({naive_s / batched_s:.0f}x)"
    )
    # The paper's point: batching is orders of magnitude cheaper.  Keep a
    # conservative bound so the assertion is robust on slow machines.
    assert batched_s * 10 < naive_s
