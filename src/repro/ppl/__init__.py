"""A tiny generative probabilistic programming language (Section 6).

The paper contrasts Uncertain<T> with generative PPLs (Church, IBAL, Fun):
those languages build a joint model, and inference — e.g. by rejection
sampling against observations — must execute *both* sides of conditionals
and pays dearly for rare evidence.  Figure 17's alarm example has a 0.11%
acceptance rate, which is why Church took 20 seconds to draw 100 samples.

This package implements just enough of such a language to reproduce that
comparison honestly: generative models as Python functions over a
:class:`Trace`, with ``observe``/rejection-based posterior queries.
"""

from repro.ppl.language import Observe, RejectionResult, Trace, rejection_query
from repro.ppl.alarm import (
    alarm_model,
    exact_phone_working_posterior,
    run_alarm_comparison,
)
from repro.ppl.importance import (
    WeightedResult,
    WeightedTrace,
    alarm_model_weighted,
    likelihood_weighting,
)

__all__ = [
    "Trace",
    "Observe",
    "RejectionResult",
    "rejection_query",
    "alarm_model",
    "exact_phone_working_posterior",
    "run_alarm_comparison",
    "WeightedTrace",
    "WeightedResult",
    "likelihood_weighting",
    "alarm_model_weighted",
]
