"""Ancestral sampling over the Bayesian network (Section 4.2).

Because the network is a DAG, its nodes admit a topological order.  We
evaluate leaves first and propagate values upward, visiting each node exactly
once per joint sample — the memoisation that makes shared subexpressions
(Figure 8) statistically correct.

This module is a thin facade over the compilation/execution layer:
:func:`repro.core.plan.compile_plan` lowers a graph once into a flat,
topologically ordered :class:`~repro.core.plan.EvaluationPlan` (cached per
root), and an :class:`~repro.core.engines.ExecutionEngine` (selected by the
ambient :class:`~repro.core.conditionals.EvaluationConfig`) runs it.
Repeated draws — the SPRT's batches, ``expected_value``, ``pr()`` — pay
graph traversal zero times after the first.

The implementation is batch-first: one evaluation pass computes ``n``
independent joint samples as numpy arrays, which is what the SPRT's batched
draws (Section 4.3) consume.  A single sample is a batch of one.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core import conditionals as _cond
from repro.core.engines import ExecutionEngine, get_engine
from repro.core.graph import Node
from repro.core.plan import EvaluationPlan, compile_plan
from repro.rng import ensure_rng


class SamplingError(RuntimeError):
    """Raised when a sampling function misbehaves (wrong shape, NaN policy)."""


def _resolve_engine(engine: "str | ExecutionEngine | None") -> ExecutionEngine:
    if engine is None:
        engine = _cond.get_config().engine
    return get_engine(engine)


def execute_plan(
    plan: EvaluationPlan,
    n: int,
    rng: np.random.Generator | int | None = None,
    memo: dict[Node, np.ndarray] | None = None,
    engine: "str | ExecutionEngine | None" = None,
) -> np.ndarray:
    """Run a compiled plan, returning ``n`` joint samples of its root.

    ``memo`` (node -> batch) pre-seeds already-sampled variables and
    receives every newly evaluated one; sharing a memo across plans keeps
    shared variables consistent between roots.
    """
    if n <= 0:
        raise ValueError(f"batch size must be positive, got {n}")
    config = _cond.get_config()
    eng = get_engine(engine if engine is not None else config.engine)
    return eng.sample(plan, int(n), ensure_rng(rng), memo=memo,
                      telemetry=config.plan_telemetry)


class SampleContext:
    """One batch of ``n`` joint assignments to every sampled variable.

    A context represents ``n`` joint assignments to the random variables of
    any graphs evaluated through it.  Reusing a context across multiple
    roots (as the Game of Life's four rule conditionals do within one cell
    update) keeps shared variables consistent between those roots.

    Internally the context is a memo table keyed by node object — the node
    *is* the variable (Figure 8) — filled by executing each root's cached
    plan with the shared memo.  Keying on the objects themselves (rather
    than the seed's ``id()`` integers) also keeps every sampled node alive
    for the lifetime of the context, so no separate GC pinning is needed.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        engine: "str | ExecutionEngine | None" = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"batch size must be positive, got {n}")
        self.n = int(n)
        self.rng = ensure_rng(rng)
        self._engine = engine
        self._values: dict[Node, np.ndarray] = {}

    def __contains__(self, node: Node) -> bool:
        return node in self._values

    def value_of(self, node: Node) -> np.ndarray:
        """Sampled batch for ``node``, evaluating lazily on first access."""
        batch = self._values.get(node)
        if batch is None:
            config = _cond.get_config()
            plan = compile_plan(
                node,
                telemetry=config.plan_telemetry,
                analyze=config.plan_analyzer,
            )
            eng = get_engine(
                self._engine if self._engine is not None else config.engine
            )
            batch = eng.sample(
                plan, self.n, self.rng, memo=self._values,
                telemetry=config.plan_telemetry,
            )
        return batch


def sample_batch(
    root: Node,
    n: int,
    rng: np.random.Generator | int | None = None,
    engine: "str | ExecutionEngine | None" = None,
) -> np.ndarray:
    """Draw ``n`` independent joint samples of ``root`` via its cached plan."""
    config = _cond.get_config()
    plan = compile_plan(
        root, telemetry=config.plan_telemetry, analyze=config.plan_analyzer
    )
    return execute_plan(plan, n, rng, engine=engine)


def sample_once(root: Node, rng: np.random.Generator | int | None = None) -> Any:
    """Draw a single joint sample of ``root``."""
    return sample_batch(root, 1, rng)[0]


def bernoulli_sampler(root: Node, rng: np.random.Generator):
    """Adapt a boolean-valued node into the draw-k callable the tests use.

    Each call draws a fresh batch of joint samples — exactly the repeated
    batched sampling loop of Section 4.3.  The plan is compiled once, up
    front, so the SPRT's sequential batches amortise traversal to zero.
    """
    config = _cond.get_config()
    plan = compile_plan(
        root, telemetry=config.plan_telemetry, analyze=config.plan_analyzer
    )

    def draw(k: int) -> np.ndarray:
        return np.asarray(execute_plan(plan, k, rng), dtype=bool)

    return draw
