"""Tests for conditional evaluation and its ambient configuration."""


from repro.core.conditionals import (
    EvaluationConfig,
    evaluation_config,
    get_config,
)
from repro.core.sprt import FixedSampleTest, SPRT, TestDecision
from repro.core.uncertain import Uncertain
from repro.dists import Bernoulli, Gaussian
from repro.rng import default_rng


class TestEvaluationConfig:
    def test_default_test_is_sprt(self):
        test = EvaluationConfig().make_test(0.5)
        assert isinstance(test, SPRT)
        assert test.threshold == 0.5

    def test_test_factory_override(self):
        cfg = EvaluationConfig(test_factory=lambda t: FixedSampleTest(t, n=50))
        test = cfg.make_test(0.7)
        assert isinstance(test, FixedSampleTest)
        assert test.threshold == 0.7

    def test_record_and_reset(self):
        cfg = EvaluationConfig()
        cfg.record(30)
        cfg.record(20)
        assert cfg.samples_drawn == 50
        assert cfg.conditionals_evaluated == 2
        cfg.reset_sample_counter()
        assert cfg.samples_drawn == 0

    def test_context_manager_scoping(self):
        outer = get_config()
        with evaluation_config(alpha=0.01) as inner:
            assert get_config() is inner
            assert inner.alpha == 0.01
        assert get_config() is outer

    def test_nested_scopes_inherit(self):
        with evaluation_config(alpha=0.01):
            with evaluation_config(batch_size=25) as inner:
                assert inner.alpha == 0.01
                assert inner.batch_size == 25

    def test_counters_start_fresh_in_scope(self):
        with evaluation_config() as cfg:
            assert cfg.samples_drawn == 0


class TestConditionalBehaviour:
    def test_implicit_true(self):
        with evaluation_config(rng=default_rng(0)):
            assert bool(Uncertain(Gaussian(1.0, 0.1)) > 0.0)

    def test_implicit_false(self):
        with evaluation_config(rng=default_rng(0)):
            assert not bool(Uncertain(Gaussian(-1.0, 0.1)) > 0.0)

    def test_explicit_threshold_direction(self):
        # Pr[cond] = 0.75: passes .pr(0.6), fails .pr(0.9).
        cond = Uncertain(Bernoulli(0.75)) == 1
        with evaluation_config(rng=default_rng(1)):
            assert cond.pr(0.6)
            assert not cond.pr(0.9)

    def test_ternary_logic_neither_branch(self):
        # Two exactly balanced complementary conditionals: with max_samples
        # bounded, both should be inconclusive -> False.
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(rng=default_rng(2), max_samples=1_000, epsilon=0.02):
            first = bool(a < b)
            second = bool(a >= b)
        assert not first and not second

    def test_samples_recorded(self):
        cond = Uncertain(Gaussian(1.0, 0.1)) > 0.0
        with evaluation_config(rng=default_rng(3)) as cfg:
            bool(cond)
            assert cfg.samples_drawn >= cfg.batch_size
            assert cfg.conditionals_evaluated == 1

    def test_test_result_diagnostics(self):
        cond = Uncertain(Gaussian(2.0, 0.1)) > 0.0
        with evaluation_config(rng=default_rng(4)):
            result = cond.test(0.5)
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE
        assert result.p_hat > 0.9

    def test_custom_test_object(self):
        cond = Uncertain(Gaussian(2.0, 0.1)) > 0.0
        result = cond.test(0.5, test=FixedSampleTest(0.5, n=11), rng=default_rng(5))
        assert result.samples_used == 11

    def test_factory_changes_conditional_mechanics(self):
        cond = Uncertain(Gaussian(0.5, 1.0)) > 0.0
        with evaluation_config(
            rng=default_rng(6),
            test_factory=lambda t: FixedSampleTest(t, n=201),
        ) as cfg:
            bool(cond)
        assert cfg.samples_drawn == 201

    def test_explicit_rng_argument(self):
        cond = Uncertain(Gaussian(1.0, 0.1)) > 0.0
        assert cond.pr(0.5, rng=default_rng(7))
