"""Figures 7-8 bench: shared-dependence semantics, plus the memoisation
ablation DESIGN.md calls out (node-identity memoisation vs naive
resampling)."""


from benchmarks.conftest import run_and_report
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian
from repro.rng import default_rng


def test_fig08_dependence(benchmark):
    run_and_report(benchmark, "fig08", fast=True)


def test_ablation_memoised_vs_resampled_semantics(benchmark):
    """Ablation: what the *wrong* network of Figure 8(a) would compute.

    The memoised implementation yields Var[X+X] = 4; independently
    resampling each use of X (two different leaves) yields 2.  The bench
    times the memoised path and checks both statistics, demonstrating why
    node identity matters.
    """
    x = Uncertain(Gaussian(0.0, 1.0))
    shared = x + x
    # The "wrong network": two distinct leaves of the same distribution.
    resampled = Uncertain(Gaussian(0.0, 1.0)) + Uncertain(Gaussian(0.0, 1.0))

    def measure():
        rng = default_rng(88)
        return shared.var(20_000, rng), resampled.var(20_000, rng)

    var_shared, var_resampled = benchmark(measure)
    print(f"\nVar[x+x] shared-node={var_shared:.3f} (paper-correct 4.0), "
          f"independent-leaves={var_resampled:.3f} (wrong network 2.0)")
    assert abs(var_shared - 4.0) < 0.3
    assert abs(var_resampled - 2.0) < 0.3
