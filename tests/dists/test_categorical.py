"""Tests for Categorical and PointMass."""

import numpy as np
import pytest

from repro.dists import Categorical, PointMass


class TestCategorical:
    def test_sampling_frequencies(self, fixed_rng):
        c = Categorical([1, 2, 3], [0.2, 0.3, 0.5])
        s = c.sample_n(50_000, fixed_rng)
        assert np.mean(s == 3) == pytest.approx(0.5, abs=0.01)

    def test_probabilities_normalised(self):
        c = Categorical(["a", "b"], [2.0, 6.0])
        assert np.allclose(c.probs, [0.25, 0.75])

    def test_object_values(self, rng):
        c = Categorical([(1, 2), (3, 4)], [0.5, 0.5])
        sample = c.sample(rng)
        assert sample in ((1, 2), (3, 4))

    def test_numeric_moments(self):
        c = Categorical([0.0, 10.0], [0.5, 0.5])
        assert c.mean == pytest.approx(5.0)
        assert c.variance == pytest.approx(25.0)

    def test_pmf(self):
        c = Categorical([1, 2], [0.25, 0.75])
        assert float(c.pdf(2)) == pytest.approx(0.75)
        assert float(c.pdf(5)) == 0.0

    def test_support(self):
        c = Categorical([3.0, -1.0, 2.0], [1, 1, 1])
        assert c.support.lower == -1.0 and c.support.upper == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Categorical([], [])
        with pytest.raises(ValueError):
            Categorical([1], [0.5, 0.5])
        with pytest.raises(ValueError):
            Categorical([1, 2], [-0.5, 1.5])
        with pytest.raises(ValueError):
            Categorical([1, 2], [0.0, 0.0])


class TestPointMass:
    def test_all_samples_equal(self, rng):
        assert np.all(PointMass(7.5).sample_n(100, rng) == 7.5)

    def test_object_value(self, rng):
        obj = object()
        p = PointMass(obj)
        assert p.sample(rng) is obj
        assert all(v is obj for v in p.sample_n(5, rng))

    def test_moments(self):
        p = PointMass(3.0)
        assert p.mean == 3.0
        assert p.variance == 0.0

    def test_pmf(self):
        p = PointMass(2)
        assert float(p.pdf(2)) == 1.0
        assert float(p.pdf(3)) == 0.0

    def test_support_degenerate(self):
        s = PointMass(4.0).support
        assert s.lower == s.upper == 4.0
