"""Interval analysis (Moore 1966) — the bounds-only baseline.

An `Interval` propagates guaranteed bounds through arithmetic.  The paper's
critique (Section 6): "intervals treat all random variables as having
uniform distributions, an assumption far too limiting" — and, we add,
interval arithmetic ignores dependence, so ``x - x`` is ``[lo-hi, hi-lo]``
rather than zero (the *dependency problem*).  The comparison experiment
measures both failure modes against Uncertain<T>.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] with outward-directed arithmetic."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"need lo <= hi, got [{self.lo}, {self.hi}]")

    @classmethod
    def from_value(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def from_center(cls, center: float, radius: float) -> "Interval":
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        return cls(center - radius, center + radius)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    # -- arithmetic ----------------------------------------------------------

    def _coerce(self, other) -> "Interval":
        if isinstance(other, Interval):
            return other
        return Interval.from_value(float(other))

    def __add__(self, other) -> "Interval":
        o = self._coerce(other)
        return Interval(self.lo + o.lo, self.hi + o.hi)

    __radd__ = __add__

    def __sub__(self, other) -> "Interval":
        o = self._coerce(other)
        return Interval(self.lo - o.hi, self.hi - o.lo)

    def __rsub__(self, other) -> "Interval":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Interval":
        o = self._coerce(other)
        products = (self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi)
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Interval":
        o = self._coerce(other)
        if o.lo <= 0.0 <= o.hi:
            raise ZeroDivisionError(f"divisor interval {o} contains zero")
        return self * Interval(1.0 / o.hi, 1.0 / o.lo)

    def __rtruediv__(self, other) -> "Interval":
        return self._coerce(other) / self

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __abs__(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    # -- comparisons: tri-state, not evidence ---------------------------------

    def definitely_greater(self, threshold: float) -> bool:
        return self.lo > threshold

    def definitely_less(self, threshold: float) -> bool:
        return self.hi < threshold

    def possibly_greater(self, threshold: float) -> bool:
        return self.hi > threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g}, {self.hi:g}]"
