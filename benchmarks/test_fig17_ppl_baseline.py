"""Figure 17 bench: generative-PPL inference cost vs Uncertain conditionals."""

from benchmarks.conftest import run_and_report


def test_fig17_ppl_baseline(benchmark):
    run_and_report(benchmark, "fig17", fast=True)
