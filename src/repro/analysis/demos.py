"""Named demo graphs for ``python -m repro.analysis graph <demo>``.

Each demo builds a small, self-contained uncertain computation that
exercises one or more graph rules, so the CLI can show the abstract
interpreter working end-to-end without the user writing code first.
``resolve_target`` also accepts a ``module.path:callable`` spec whose
callable returns an ``Uncertain`` (or raw ``Node``), which is how users
point the analyzer at their own graphs.
"""

from __future__ import annotations

import importlib
import math
from typing import Callable

from repro.core.uncertain import Uncertain


def _demo_quickstart() -> Uncertain:
    """The quickstart pace computation.

    Deliberately instructive: a Gaussian speed has support ``(-inf, inf)``
    even though physical speed is positive, so the pace division trips
    UNC101 — exactly the silent inf/NaN samples the paper's Section 2
    warns about.  A truncated or Rayleigh speed model fixes it.
    """
    from repro.dists import Gaussian

    speed = Uncertain(Gaussian(3.5, 1.0), label="speed")
    km_per_h = speed * 1.609344
    return 60.0 / km_per_h


def _demo_div_by_zero() -> Uncertain:
    """Division by a zero-crossing Gaussian — the UNC101 poster child."""
    from repro.dists import Gaussian, Uniform

    distance = Uncertain(Uniform(0.0, 100.0), label="distance_m")
    dt = Uncertain(Gaussian(1.0, 0.5), label="dt_s")
    return distance / dt


def _demo_log_domain() -> Uncertain:
    """``log`` of a support that dips below zero — UNC102."""
    from repro.dists import Gaussian

    from repro.core.lifting import lift

    x = Uncertain(Gaussian(2.0, 1.0), label="x")
    return lift(math.log, vectorized=False)(x)


def _demo_decided() -> Uncertain:
    """A comparison the SPRT can never change — UNC103."""
    from repro.dists import Uniform

    x = Uncertain(Uniform(0.0, 1.0), label="x")
    return x > 2.0


def _demo_self_compare() -> Uncertain:
    """``x == x`` on a shared node — UNC104."""
    from repro.dists import Gaussian

    x = Uncertain(Gaussian(0.0, 1.0), label="x")
    return x == x


def _demo_const_fold() -> Uncertain:
    """A point-mass-only subexpression — UNC105."""
    from repro.dists import Gaussian

    mph_per_mps = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
    speed_mps = Uncertain(Gaussian(1.5, 0.3), label="speed_mps")
    return speed_mps * mph_per_mps


def _demo_fig08() -> Uncertain:
    """Figure 8's shared-subexpression diamond — clean."""
    from repro.dists import Gaussian

    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return (y + x) + x


def _demo_correlated_compare() -> Uncertain:
    """A comparison only dependence tracking decides — UNC106.

    ``x + 1 > x`` is always true, but the operands share the Gaussian's
    infinite support, so interval analysis sees ``(-inf, inf) >
    (-inf, inf)`` and shrugs; the affine domain cancels the shared
    symbol and proves the difference is exactly 1.
    """
    from repro.dists import Gaussian

    x = Uncertain(Gaussian(0.0, 1.0), label="x")
    return (x + 1.0) > x


def _demo_iid_reconstruction() -> Uncertain:
    """A reconstructed (not shared) subexpression — UNC107.

    Both operands compute "sensor + offset", but each side builds its
    *own* leaves, so the comparison samples two independent copies of a
    quantity that was presumably meant to be one shared value.
    """
    from repro.dists import Gaussian, Uniform

    lhs = Uncertain(Gaussian(0.0, 1.0), label="sensor") + Uncertain(
        Uniform(0.0, 0.5), label="offset")
    rhs = Uncertain(Gaussian(0.0, 1.0), label="sensor") + Uncertain(
        Uniform(0.0, 0.5), label="offset")
    return lhs > rhs


DEMOS: dict[str, Callable[[], Uncertain]] = {
    "quickstart": _demo_quickstart,
    "div-by-zero": _demo_div_by_zero,
    "log-domain": _demo_log_domain,
    "decided-comparison": _demo_decided,
    "self-compare": _demo_self_compare,
    "const-fold": _demo_const_fold,
    "fig08": _demo_fig08,
    "correlated-compare": _demo_correlated_compare,
    "iid-reconstruction": _demo_iid_reconstruction,
}


# ---------------------------------------------------------------------------
# The certification corpus: the plans `python -m repro.analysis certify`
# checks by default.  Mirrors the benchmark workloads (benchmarks/ is not
# an importable package) plus every demo above, so the CI gate covers the
# same shapes the performance suite runs.
# ---------------------------------------------------------------------------


def _corpus_gps_window() -> Uncertain:
    """The fig08-style GPS sliding-window workload (scaled-down mirror of
    ``benchmarks/test_plan_compilation.py::_fig08_root``): coalesced
    same-family Gaussian fix draws, shared window sums, constant-fold and
    CSE bait, a lifted ``np.sqrt``, and a threshold comparison."""
    import numpy as np

    from repro.dists import Exponential, Gaussian, Uniform

    window = 8

    def sliding_means(fixes):
        middle = fixes[1]
        for fix in fixes[2:-1]:
            middle = middle + fix
        scale = Uncertain.pointmass(float(window))
        prev = (fixes[0] + middle) / scale
        cur = (middle + fixes[-1]) / scale
        return prev, cur

    lat = [Uncertain(Gaussian(47.6097, 2.5e-5)) for _ in range(window + 1)]
    lon = [Uncertain(Gaussian(-122.3331, 2.5e-5)) for _ in range(window + 1)]
    prev_lat, cur_lat = sliding_means(lat)
    prev_lon, cur_lon = sliding_means(lon)
    dt = Uncertain(Uniform(0.9, 1.1))
    drift = Uncertain(Exponential(4.0))
    deg2rad = Uncertain.pointmass(math.pi) / Uncertain.pointmass(180.0)
    earth_r = Uncertain.pointmass(6_371_008.8)
    cos_lat = Uncertain.pointmass(0.6756)
    dy = (cur_lat * deg2rad - prev_lat * deg2rad) * earth_r
    dx = (cur_lon * deg2rad - prev_lon * deg2rad) * (earth_r * cos_lat)
    dist_m = (dx * dx + dy * dy).map(np.sqrt, vectorized=True)
    speed_mps = (dist_m + drift) / dt
    walk_limit = Uncertain.pointmass(4.0) * (
        Uncertain.pointmass(1609.344) / Uncertain.pointmass(3600.0))
    return speed_mps > walk_limit


def _corpus_sprt_sum() -> Uncertain:
    """The SPRT-shaped benchmark network: a 12-leaf Gaussian sum compared
    against one of its own (shared) leaves."""
    from repro.dists import Gaussian

    leaves = [Uncertain(Gaussian(0.0, 1.0)) for _ in range(12)]
    acc = leaves[0]
    for leaf in leaves[1:]:
        acc = acc + leaf
    return acc > leaves[0]


CERTIFY_CORPUS: dict[str, Callable[[], Uncertain]] = {
    **DEMOS,
    "gps-window": _corpus_gps_window,
    "sprt-sum": _corpus_sprt_sum,
}


def resolve_target(spec: str, registry: dict | None = None) -> Uncertain:
    """Build the graph named by ``spec``.

    ``spec`` is either a name from ``registry`` (:data:`DEMOS` by
    default; the ``certify`` subcommand passes :data:`CERTIFY_CORPUS`)
    or a ``module.path:callable`` reference to a zero-argument function
    returning an ``Uncertain`` or ``Node``.
    """
    if registry is None:
        registry = DEMOS
    if spec in registry:
        return registry[spec]()
    if ":" in spec:
        module_name, _, attr = spec.partition(":")
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        value = factory()
        return value if isinstance(value, Uncertain) else Uncertain(value)
    raise SystemExit(
        f"unknown demo {spec!r}; choose one of "
        f"{', '.join(sorted(registry))} or pass a 'module.path:callable' "
        "spec"
    )
