"""Tests for the approximate-hardware accelerator simulation."""

import numpy as np
import pytest

from repro.ml.accelerator import (
    ApproximateAccelerator,
    HardwareModel,
    hardware_error_rate,
)
from repro.ml.images import make_dataset
from repro.ml.parakeet import train_parrot
from repro.rng import default_rng


@pytest.fixture(scope="module")
def trained():
    x, t = make_dataset(600, rng=default_rng(0))
    parrot = train_parrot(x, t, epochs=80, rng=default_rng(1))
    x_eval, t_eval = make_dataset(100, rng=default_rng(2))
    return parrot.mlp, x_eval, t_eval


class TestHardwareModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareModel(weight_noise=-0.1)
        with pytest.raises(ValueError):
            HardwareModel(stuck_at_zero_fraction=1.0)


class TestAccelerator:
    def test_noiseless_hardware_matches_software(self, trained):
        mlp, x_eval, _ = trained
        acc = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.0, activation_noise=0.0),
            rng=default_rng(3),
        )
        hw = acc.predict(x_eval[0]).sample(default_rng(4))
        sw = float(mlp.forward(np.atleast_2d(x_eval[0]))[0])
        assert hw == pytest.approx(sw, abs=1e-9)

    def test_noise_creates_spread(self, trained):
        mlp, x_eval, _ = trained
        acc = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.05, activation_noise=0.02),
            rng=default_rng(5),
        )
        u = acc.predict(x_eval[0])
        assert u.sd(500, default_rng(6)) > 1e-4

    def test_more_noise_more_spread(self, trained):
        mlp, x_eval, _ = trained
        quiet = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.01), rng=default_rng(7)
        )
        loud = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.1), rng=default_rng(8)
        )
        assert loud.predict(x_eval[1]).sd(500, default_rng(9)) > quiet.predict(
            x_eval[1]
        ).sd(500, default_rng(10))

    def test_stuck_faults_are_deterministic_per_chip(self, trained):
        mlp, x_eval, _ = trained
        acc = ApproximateAccelerator(
            mlp,
            HardwareModel(weight_noise=0.0, activation_noise=0.0,
                          stuck_at_zero_fraction=0.2),
            rng=default_rng(11),
        )
        a = acc.predict(x_eval[0]).sample(default_rng(12))
        b = acc.predict(x_eval[0]).sample(default_rng(13))
        assert a == pytest.approx(b)  # same chip, same faults, no noise

    def test_mean_tracks_software_output(self, trained):
        mlp, x_eval, _ = trained
        acc = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.03), rng=default_rng(14)
        )
        hw_mean = acc.predict(x_eval[2]).expected_value(2_000, default_rng(15))
        sw = float(mlp.forward(np.atleast_2d(x_eval[2]))[0])
        assert hw_mean == pytest.approx(sw, abs=0.05)


class TestHardwareErrorRate:
    def test_evidence_flow_no_worse_than_naive(self, trained):
        mlp, x_eval, t_eval = trained
        acc = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.08, activation_noise=0.05),
            rng=default_rng(16),
        )
        naive = hardware_error_rate(
            acc, x_eval, t_eval, evidence=None, rng=default_rng(17)
        )
        uncertain = hardware_error_rate(
            acc, x_eval, t_eval, evidence=0.5, samples_per_input=100,
            rng=default_rng(18),
        )
        assert uncertain <= naive + 0.02

    def test_zero_noise_rates_equal(self, trained):
        mlp, x_eval, t_eval = trained
        acc = ApproximateAccelerator(
            mlp, HardwareModel(weight_noise=0.0, activation_noise=0.0),
            rng=default_rng(19),
        )
        naive = hardware_error_rate(acc, x_eval, t_eval, rng=default_rng(20))
        uncertain = hardware_error_rate(
            acc, x_eval, t_eval, evidence=0.5, samples_per_input=50,
            rng=default_rng(21),
        )
        assert naive == uncertain  # deterministic hardware: flows agree
