"""Experiment drivers that regenerate every figure in the paper.

Each module exposes a ``run(seed=..., fast=...)`` function returning an
:class:`ExperimentResult` whose rows are the figure's data series.  The
benchmark suite calls these drivers and asserts the paper's *shape* claims;
``python -m repro.experiments`` runs everything and prints the tables.

``fast=True`` (the default for tests and benchmarks) uses reduced
replication counts that preserve every qualitative conclusion; ``fast=False``
approaches the paper's full protocol.
"""

from repro.experiments.base import ExperimentResult, registry, run_experiment
from repro.experiments import (  # noqa: F401  (imports populate the registry)
    fig01_sample,
    fig03_naive_speed,
    fig04_ticket,
    fig06_compounding,
    fig08_dependence,
    fig09_evidence,
    fig11_gps_posterior,
    fig13_walking,
    fig14_sensorlife,
    fig15_ppd,
    fig16_precision_recall,
    fig17_ppl,
    sec2_claims,
    table1_operators,
    ext_geofence,
    ext_fusion,
    ext_life_dynamics,
    ext_hardware,
    ext_baselines,
)

__all__ = ["ExperimentResult", "registry", "run_experiment"]
