"""Ablation benches for the remaining design decisions in DESIGN.md.

- Adaptive vs fixed expected-value sampling (the paper's anticipated
  improvement to the ``E`` operator).
- Group-sequential vs truncated-SPRT conditionals (the paper's anticipated
  replacement for bounded sample sizes).
- SIR vs rejection posterior construction.
"""


from repro.core.bayes import posterior
from repro.core.expectation import expected_value, expected_value_adaptive
from repro.core.sprt import GroupSequentialTest, SPRT
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, TruncatedGaussian
from repro.rng import default_rng


def test_ablation_adaptive_vs_fixed_expectation(benchmark):
    """Adaptive E matches fixed-1000 accuracy with far fewer samples on
    low-variance variables."""
    tight = Uncertain(Gaussian(5.0, 0.05))

    def adaptive():
        return expected_value_adaptive(
            tight, tolerance=0.01, batch_size=50, rng=default_rng(0)
        )

    mean, n_adaptive = benchmark(adaptive)
    fixed = expected_value(tight, 1_000, default_rng(1))
    print(f"\nadaptive: {n_adaptive} samples, mean {mean:.4f}; fixed: 1000 samples, {fixed:.4f}")
    assert abs(mean - 5.0) < 0.02
    assert n_adaptive < 500


def test_ablation_group_sequential_vs_sprt(benchmark):
    """Group sequential testing bounds worst-case samples; SPRT wins on
    average for easy conditionals."""

    def stream(p, seed):
        rng = default_rng(seed)
        return lambda k: rng.random(k) < p

    sprt = SPRT(threshold=0.5, max_samples=5_000)
    gst = GroupSequentialTest(threshold=0.5, looks=5, group_size=200)

    def run_easy_cases():
        sprt_total = sum(sprt.run(stream(0.9, s)).samples_used for s in range(20))
        gst_total = sum(gst.run(stream(0.9, s)).samples_used for s in range(20))
        return sprt_total, gst_total

    sprt_total, gst_total = benchmark(run_easy_cases)
    print(f"\neasy conditionals: SPRT {sprt_total} samples, group-seq {gst_total}")
    assert sprt_total < gst_total  # SPRT is cheaper on easy cases
    # ...but the group-sequential worst case is bounded by construction.
    hard = gst.run(stream(0.5, 123))
    assert hard.samples_used <= gst.max_samples


def test_ablation_sir_vs_rejection_posterior(benchmark):
    """SIR has a deterministic budget; rejection is unbiased but variable."""
    estimate = Uncertain(Gaussian(5.0, 3.0))
    prior = TruncatedGaussian(3.0, 1.0, 0.0, 6.0)

    def sir():
        return posterior(estimate, prior, n_proposals=5_000, rng=default_rng(2))

    sir_post = benchmark(sir)
    rej_post = posterior(
        estimate, prior, n_proposals=5_000, method="rejection", rng=default_rng(3)
    )
    sir_mean = sir_post.expected_value(2_000, default_rng(4))
    rej_mean = rej_post.expected_value(2_000, default_rng(5))
    print(f"\nSIR mean {sir_mean:.3f}, rejection mean {rej_mean:.3f}")
    assert abs(sir_mean - rej_mean) < 0.2
