"""Tests for the cross-query sample ledger (``repro.core.ledger``).

The load-bearing property is the acceptance contract: with
``sample_cache`` on, every query result is bit-identical to the same
query with the ledger off, seed-for-seed, on both the numpy and fused
engines — for raw samples, E, CI, percentiles, evidence, and full SPRT
runs — while repeated queries stop paying for rows they already drew.
"""

import numpy as np
import pytest

from repro.core.conditionals import evaluation_config
from repro.core.ledger import (
    LEDGER,
    SampleLedger,
    clear_ledger,
    ledger_stats,
)
from repro.core.plan import clear_plan_cache, compile_plan, invalidate_plan
from repro.core.sampling import SampleBudgetExceeded
from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.dists.categorical import PointMass
from repro.dists.uniform import Uniform
from repro.resilience import NonFiniteError
from repro.runtime.metrics import RuntimeMetrics

ENGINES = ["numpy", "fused"]


@pytest.fixture(autouse=True)
def _fresh_ledger():
    clear_ledger()
    yield
    clear_ledger()


def certified_value() -> Uncertain:
    """Single stochastic bulk draw: certified stream mode on every engine."""
    return Uncertain(Gaussian(5.0, 2.0)) * 1.5 + 3.0


def replay_value() -> Uncertain:
    """Two stochastic leaves: interleaved draws force replay mode."""
    return Uncertain(Gaussian(0.0, 1.0)) + Uncertain(Uniform(0.0, 1.0))


class TestBitIdentity:
    """Ledger-on must equal ledger-off, seed-for-seed (acceptance suite)."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("make", [certified_value, replay_value])
    def test_samples_expectation_ci_percentiles_evidence(self, engine, make):
        u = make()
        b = u > 6.0
        with evaluation_config(engine=engine):
            off = (
                u.samples(300, rng=42),
                u.expected_value(n=1000, rng=7),
                u.confidence_interval(0.95, samples=2000, rng=11),
                u.percentiles(20, samples=2000, rng=13),
                b.evidence(2000, rng=17),
            )
        with evaluation_config(engine=engine, sample_cache=True):
            on = (
                u.samples(300, rng=42),
                u.expected_value(n=1000, rng=7),
                u.confidence_interval(0.95, samples=2000, rng=11),
                u.percentiles(20, samples=2000, rng=13),
                b.evidence(2000, rng=17),
            )
        assert np.array_equal(off[0], on[0])
        assert off[1] == on[1]
        assert off[2] == on[2]
        assert np.array_equal(off[3], on[3])
        assert off[4] == on[4]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("make", [certified_value, replay_value])
    def test_sprt_verdict_and_evidence_path(self, engine, make):
        b = make() > 6.0
        with evaluation_config(engine=engine):
            off = b.test(rng=21)
        with evaluation_config(engine=engine, sample_cache=True):
            on = b.test(rng=21)
            again = b.test(rng=21)
        assert on.decision == off.decision
        assert on.samples_used == off.samples_used
        assert on.p_hat == off.p_hat
        # A repeated identical test replays the cached stream exactly.
        assert again.p_hat == on.p_hat
        assert again.samples_used == on.samples_used

    @pytest.mark.parametrize("engine", ENGINES)
    def test_suffix_extension_equals_fresh_run(self, engine):
        u = certified_value()
        with evaluation_config(engine=engine):
            fresh = u.samples(500, rng=99)
        with evaluation_config(engine=engine, sample_cache=True):
            head = u.samples(120, rng=99)
            extended = u.samples(500, rng=99)
        assert np.array_equal(head, fresh[:120])
        assert np.array_equal(extended, fresh)


class TestSampleEconomics:
    def test_budget_charges_only_the_suffix(self):
        u = certified_value()
        with evaluation_config(sample_cache=True) as cfg:
            u.samples(100, rng=5)
            assert cfg.samples_executed == 100
            u.samples(250, rng=5)  # 100 cached + 150 drawn
            assert cfg.samples_executed == 250
            u.samples(250, rng=5)  # fully cached
            assert cfg.samples_executed == 250
            u.samples(40, rng=5)  # prefix read
            assert cfg.samples_executed == 250

    def test_budget_still_enforced_on_the_suffix(self):
        u = certified_value()
        with evaluation_config(sample_cache=True, sample_budget=150):
            u.samples(100, rng=5)
            with pytest.raises(SampleBudgetExceeded):
                u.samples(300, rng=5)  # needs 200 more > 50 remaining

    def test_sprt_rerun_draws_no_new_rows(self):
        b = certified_value() > 6.0
        scoped = RuntimeMetrics()
        with evaluation_config(sample_cache=True, metrics=scoped):
            first = b.test(rng=31)
            drawn_after_first = scoped.ledger_rows_drawn
            second = b.test(rng=31)
        assert second.p_hat == first.p_hat
        assert scoped.ledger_rows_drawn == drawn_after_first
        assert scoped.ledger_rows_reused >= first.samples_used

    def test_replay_exact_n_repeats_hit(self):
        m = replay_value()
        scoped = RuntimeMetrics()
        with evaluation_config(sample_cache=True, metrics=scoped):
            a = m.samples(400, rng=3)
            b = m.samples(400, rng=3)
        assert np.array_equal(a, b)
        assert scoped.ledger_hits >= 1
        assert scoped.ledger_rows_drawn == 400
        assert ledger_stats()["modes"] == {"replay": 1}


class TestStreamSemantics:
    def test_ambient_repeated_queries_reuse_rows(self):
        u = certified_value()
        with evaluation_config(sample_cache=True) as cfg:
            cfg.rng.standard_normal(5)  # an advanced, ambient stream
            a = u.samples(200)
            b = u.samples(200)
        assert np.array_equal(a, b)

    def test_ambient_single_draws_stay_fresh_per_call(self):
        u = certified_value()
        with evaluation_config(sample_cache=True) as cfg:
            cfg.rng.standard_normal(5)
            draws = [u.sample() for _ in range(8)]
        assert len(set(draws)) > 1  # cursor advances; no frozen loop values

    def test_serving_never_consumes_the_caller_generator(self):
        u = certified_value()
        with evaluation_config(sample_cache=True) as cfg:
            before = cfg.rng.bit_generator.state
            u.samples(500)
            assert cfg.rng.bit_generator.state == before

    def test_returned_arrays_are_private_copies(self):
        u = certified_value()
        with evaluation_config(sample_cache=True):
            a = u.samples(50, rng=1)
            a[:] = -1.0
            b = u.samples(50, rng=1)
        assert not np.array_equal(a, b)


class TestEvictionAndRebuild:
    def test_lru_eviction_respects_byte_budget_and_rebuilds_identically(self):
        values = [
            Uncertain(Gaussian(float(i), 1.0)) * 2.0 for i in range(3)
        ]
        with evaluation_config(sample_cache=True):
            reference = [v.samples(200, rng=77) for v in values]
        clear_ledger()
        # ~1600 bytes per column; room for two entries only.
        with evaluation_config(sample_cache=4000):
            for v in values:
                v.samples(200, rng=77)
            stats = ledger_stats()
            assert stats["bytes"] <= 4000
            assert stats["entries"] < 3
            # Evicted entries rebuild bit-identically on demand.
            rebuilt = [v.samples(200, rng=77) for v in values]
        for ref, re in zip(reference, rebuilt):
            assert np.array_equal(ref, re)

    def test_clear_ledger_drops_everything(self):
        u = certified_value()
        with evaluation_config(sample_cache=True):
            u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 1
        clear_ledger()
        stats = ledger_stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["verdicts"] == {}


class TestInvalidation:
    def test_invalidate_plan_drops_ledger_entries(self):
        u = certified_value()
        with evaluation_config(sample_cache=True):
            u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 1
        invalidate_plan(u.node)
        assert ledger_stats()["entries"] == 0

    def test_clear_plan_cache_drops_ledger_entries(self):
        u = certified_value()
        with evaluation_config(sample_cache=True):
            u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 1
        clear_plan_cache()
        assert ledger_stats()["entries"] == 0

    def test_health_repair_poisons_nothing(self):
        # An always-infinite plan: cached under the default policy, then
        # repaired (unsuccessfully) under "resample" — the repair attempt
        # must drop the cached columns even though it ends in an error.
        bad = Uncertain(Gaussian(0.0, 1.0)) / Uncertain(PointMass(0.0))
        with evaluation_config(sample_cache=True):
            rows = bad.samples(50, rng=1)
            assert np.all(~np.isfinite(rows))
        assert ledger_stats()["entries"] == 1
        with evaluation_config(on_nonfinite="resample", nonfinite_retries=2):
            with pytest.raises(NonFiniteError):
                bad.samples(50, rng=1)
        assert ledger_stats()["entries"] == 0

    def test_resample_policy_bypasses_the_ledger(self):
        u = certified_value()
        scoped = RuntimeMetrics()
        with evaluation_config(
            sample_cache=True, on_nonfinite="resample", metrics=scoped
        ):
            u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 0
        assert scoped.ledger_bypasses >= 1


class TestGating:
    def test_opaque_plans_bypass(self):
        u = certified_value().map(lambda x: x + 1.0)
        assert u.plan.structural_hash is None
        with evaluation_config(sample_cache=True):
            a = u.samples(100, rng=1)
            b = u.samples(100, rng=1)
        assert np.array_equal(a, b)  # fresh generator per call either way
        assert ledger_stats()["entries"] == 0

    def test_parallel_engine_bypasses(self):
        u = certified_value()
        with evaluation_config(sample_cache=True, engine="parallel"):
            u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 0

    def test_off_by_default(self):
        u = certified_value()
        u.samples(100, rng=1)
        assert ledger_stats()["entries"] == 0

    def test_shared_context_draws_bypass(self):
        from repro.core.sampling import SampleContext

        u = certified_value()
        with evaluation_config(sample_cache=True):
            ctx = SampleContext(64, rng=5)
            ctx.value_of(u.node)
        assert ledger_stats()["entries"] == 0

    def test_certify_verdicts_are_sticky_per_shape(self):
        u = certified_value()
        m = replay_value()
        with evaluation_config(sample_cache=True):
            u.samples(50, rng=1)
            m.samples(50, rng=1)
        stats = ledger_stats()
        assert sorted(stats["verdicts"].values()) == ["replay", "stream"]
        # Clearing entries alone (eviction) keeps verdicts; full clear drops.
        assert ledger_stats()["modes"] == {"replay": 1, "stream": 1}

    def test_fill_failure_drops_the_entry(self):
        u = certified_value()
        with evaluation_config(sample_cache=True):
            u.samples(50, rng=1)
            assert ledger_stats()["entries"] == 1
            with evaluation_config(sample_cache=True, on_nonfinite="raise"):
                # force an extension failure via a poisoned plan sharing
                # nothing with u: the entry for u must survive...
                bad = Uncertain(Gaussian(0.0, 1.0)) / Uncertain(
                    PointMass(0.0)
                )
                with pytest.raises(NonFiniteError):
                    bad.samples(10, rng=2)
            stats = ledger_stats()
            # ...and the poisoned plan's half-built entry must not.
            assert stats["entries"] == 1


class TestMetricsExposition:
    def test_prometheus_renders_ledger_series(self):
        u = certified_value()
        scoped = RuntimeMetrics()
        with evaluation_config(sample_cache=True, metrics=scoped):
            u.samples(100, rng=1)
            u.samples(100, rng=1)
        text = scoped.render_prometheus()
        assert "repro_ledger_hits" in text
        assert "repro_ledger_suffix_extensions" in text
        assert "repro_ledger_bytes" in text
        snap = scoped.snapshot()["ledger"]
        assert snap["hits"] >= 1
        assert snap["rows_drawn"] == 100
        assert snap["rows_reused"] >= 100

    def test_instance_isolated_from_global(self):
        ledger = SampleLedger(max_bytes=10)
        assert ledger.stats()["entries"] == 0
        assert ledger is not LEDGER
