"""GPS-Walking (Figure 5): the paper's flagship case study, end to end.

Simulates a 5-minute walk, runs the naive and Uncertain versions of the
fitness app over the *same* noisy GPS fixes, then improves the estimates
with a walking-speed prior (Figure 13).

Run with::

    python examples/gps_walking.py
"""

import collections

import numpy as np

from repro.gps import GpsSensor, WalkConfig, generate_walk
from repro.gps.priors import walking_speed_prior
from repro.gps.walking import run_naive_walking, run_uncertain_walking
from repro.rng import default_rng


def make_sensor() -> GpsSensor:
    # A realistic receiver: temporally correlated error with occasional
    # multipath glitches, reported honestly through horizontal accuracy.
    return GpsSensor(
        epsilon_m=4.0,
        rng=default_rng(42),
        correlation=0.9,
        glitch_probability=0.01,
        glitch_scale_m=12.0,
        glitch_duration_s=2.0,
    )


def describe(label: str, result) -> None:
    decisions = collections.Counter(d.value for d in result.decisions)
    print(f"\n== {label} ==")
    print(f"  mean speed estimate : {np.mean(result.speeds_mph):6.2f} mph")
    print(f"  max speed estimate  : {np.max(result.speeds_mph):6.2f} mph")
    print(f"  seconds 'running'   : {result.running_reports}")
    print(f"  decisions           : {dict(decisions)}")


def main() -> None:
    trace = generate_walk(WalkConfig(duration_s=300.0), rng=default_rng(7))
    print(f"ground truth: mean {np.mean(trace.true_speeds_mph):.2f} mph, "
          f"max {np.max(trace.true_speeds_mph):.2f} mph over {len(trace) - 1}s")

    # Figure 5(a): GPS fixes treated as facts.
    naive = run_naive_walking(trace, make_sensor())
    describe("naive (Figure 5a)", naive)

    # Figure 5(b): the Uncertain version. GoodJob on 'more likely than
    # not'; SpeedUp only with 90% evidence (avoiding unfair nagging).
    uncertain = run_uncertain_walking(trace, make_sensor(), rng=default_rng(8))
    describe("Uncertain (Figure 5b)", uncertain)

    # Figure 13: domain knowledge as a prior removes absurd estimates.
    improved = run_uncertain_walking(
        trace, make_sensor(), prior=walking_speed_prior(), rng=default_rng(9)
    )
    describe("Uncertain + walking prior (Figure 13)", improved)

    rmse = lambda r: np.sqrt(np.mean((r.speeds_mph - r.true_speeds_mph) ** 2))
    print("\nspeed RMSE vs ground truth:")
    for label, result in (
        ("naive", naive),
        ("uncertain", uncertain),
        ("with prior", improved),
    ):
        print(f"  {label:11s}: {rmse(result):5.2f} mph")


if __name__ == "__main__":
    main()
