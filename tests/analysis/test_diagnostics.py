"""Positive and negative tests for every graph rule (UNC101-UNC105),
plus the library wiring: ``Uncertain.diagnose()``, the ``analyze=``
compile hook, and ``EvaluationConfig.enable_plan_analysis()``."""

from __future__ import annotations

import math
import warnings

import pytest

from repro.analysis import (
    Diagnostic,
    UncertaintyWarning,
    analyze,
    analyze_plan,
    inferred_supports,
    warn_on_diagnostics,
)
from repro.core.conditionals import evaluation_config
from repro.core.lifting import lift
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Exponential, Gaussian, Uniform


def rules_of(value) -> list[str]:
    return [d.rule for d in analyze(value)]


class TestUNC101Division:
    def test_positive_truediv(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
        assert rules_of(bad) == ["UNC101"]

    def test_positive_floordiv_and_mod(self):
        zero_crossing = Uncertain(Uniform(-1, 1))
        assert rules_of(Uncertain(Uniform(0, 10)) // zero_crossing) == ["UNC101"]
        assert rules_of(Uncertain(Uniform(0, 10)) % zero_crossing) == ["UNC101"]

    def test_positive_divisor_touching_zero(self):
        # A support with lower == 0 still contains 0.
        assert rules_of(1.0 / Uncertain(Uniform(0.0, 1.0))) == ["UNC101"]

    def test_negative_positive_divisor(self):
        safe = Uncertain(Uniform(0, 10)) / Uncertain(Uniform(1.0, 2.0))
        assert rules_of(safe) == []

    def test_negative_exponential_shifted(self):
        safe = 1.0 / (Uncertain(Exponential(1.0)) + 1.0)
        assert rules_of(safe) == []

    def test_diagnostic_payload(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Uniform(-2.0, 3.0))
        (diag,) = analyze(bad)
        assert diag.severity == "error"
        assert diag.data["divisor_support"] == [-2.0, 3.0]
        assert diag.node_label == "/"
        assert "contains 0" in diag.message


class TestUNC102Domains:
    def test_positive_log(self):
        bad = lift(math.log)(Uncertain(Gaussian(2.0, 1.0)))
        assert rules_of(bad) == ["UNC102"]

    def test_positive_sqrt(self):
        bad = lift(math.sqrt)(Uncertain(Uniform(-1.0, 4.0)))
        assert rules_of(bad) == ["UNC102"]

    def test_positive_fractional_pow(self):
        bad = Uncertain(Uniform(-1.0, 4.0)) ** 0.5
        assert rules_of(bad) == ["UNC102"]

    def test_negative_log_of_positive(self):
        safe = lift(math.log)(Uncertain(Exponential(1.0)) + 1.0)
        assert rules_of(safe) == []

    def test_negative_sqrt_of_nonnegative(self):
        safe = lift(math.sqrt)(Uncertain(Uniform(0.0, 4.0)))
        assert rules_of(safe) == []

    def test_negative_integer_pow_of_negative_base(self):
        safe = Uncertain(Uniform(-2.0, 2.0)) ** 2
        assert rules_of(safe) == []


class TestUNC103DecidedComparisons:
    def test_positive_always_false(self):
        decided = Uncertain(Uniform(0.0, 1.0)) > 2.0
        (diag,) = analyze(decided)
        assert diag.rule == "UNC103"
        assert diag.data["decided"] is False
        assert diag.severity == "warning"

    def test_positive_always_true(self):
        decided = Uncertain(Uniform(3.0, 4.0)) > 2.0
        (diag,) = analyze(decided)
        assert diag.rule == "UNC103" and diag.data["decided"] is True

    def test_positive_between_disjoint_supports(self):
        decided = Uncertain(Uniform(0, 1)) < Uncertain(Uniform(5, 6))
        assert rules_of(decided) == ["UNC103"]

    def test_negative_overlapping(self):
        undecided = Uncertain(Uniform(0.0, 3.0)) > 2.0
        assert rules_of(undecided) == []

    def test_negative_gaussian_never_decided(self):
        assert rules_of(Uncertain(Gaussian(0, 1)) > 1e9) == []


class TestUNC104SelfComparison:
    def test_positive_eq(self):
        x = Uncertain(Gaussian(0, 1))
        (diag,) = analyze(x == x)
        assert diag.rule == "UNC104" and diag.data["decided"] is True

    def test_positive_lt_always_false(self):
        x = Uncertain(Gaussian(0, 1))
        (diag,) = analyze(x < x)
        assert diag.rule == "UNC104" and diag.data["decided"] is False

    def test_negative_distinct_nodes_same_distribution(self):
        # Two independent Gaussians are NOT a self-comparison.
        a = Uncertain(Gaussian(0, 1))
        b = Uncertain(Gaussian(0, 1))
        assert rules_of(a == b) == []

    def test_self_comparison_not_double_reported_as_unc103(self):
        x = Uncertain.pointmass(2.0)
        rules = [d.rule for d in analyze(x == x)]
        assert "UNC104" in rules
        assert "UNC103" not in rules  # self-comparison owns the finding
        # (UNC105 legitimately fires too: the whole graph is constant.)


class TestUNC105ConstantFolding:
    def test_positive_constant_subdag(self):
        const = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
        speed = Uncertain(Gaussian(1.5, 0.3)) * const
        (diag,) = analyze(speed)
        assert diag.rule == "UNC105"
        assert diag.data["slots_saved"] == 2
        assert diag.severity == "info"

    def test_positive_reports_maximal_node_only(self):
        c = (Uncertain.pointmass(2.0) + 1.0) * 3.0
        mixed = Uncertain(Gaussian(0, 1)) + c
        diags = [d for d in analyze(mixed) if d.rule == "UNC105"]
        assert len(diags) == 1
        assert diags[0].node_label == "*"
        assert diags[0].data["slots_saved"] == 4

    def test_positive_constant_root(self):
        const = (Uncertain.pointmass(1.0) + 2.0) * 3.0
        diags = [d for d in analyze(const) if d.rule == "UNC105"]
        assert len(diags) == 1

    def test_negative_bare_point_mass(self):
        assert rules_of(Uncertain.pointmass(5.0)) == []

    def test_negative_mixed_subdag(self):
        value = Uncertain(Gaussian(0, 1)) + 1.0
        assert rules_of(value) == []


class TestUNC106CorrelatedComparisons:
    def test_positive_shared_gaussian_shift(self):
        # Interval analysis sees TOP > TOP; the affine domain cancels the
        # shared symbol and proves the comparison — the acceptance case.
        x = Uncertain(Gaussian(0, 1))
        diags = [d for d in analyze((x + 1.0) > x) if d.rule == "UNC106"]
        assert len(diags) == 1
        assert diags[0].data["decided"] is True
        assert diags[0].data["shared_leaf_slots"]
        assert diags[0].severity == "warning"

    def test_positive_shared_ancestor_difference(self):
        a = Uncertain(Gaussian(0, 1))
        b = Uncertain(Uniform(1.0, 2.0))
        diags = [d for d in analyze((a + b) - a > 0.5)
                 if d.rule == "UNC106"]
        assert len(diags) == 1 and diags[0].data["decided"] is True

    def test_negative_interval_decided_owns_the_finding(self):
        # When intervals already decide, UNC103 fires — not UNC106.
        decided = Uncertain(Uniform(0, 1)) > 2.0
        rules = rules_of(decided)
        assert "UNC103" in rules and "UNC106" not in rules

    def test_negative_self_comparison_owned_by_unc104(self):
        x = Uncertain(Gaussian(0, 1))
        rules = rules_of(x == x)
        assert "UNC104" in rules and "UNC106" not in rules

    def test_negative_independent_operands(self):
        a = Uncertain(Gaussian(0, 1))
        b = Uncertain(Gaussian(0, 1))
        assert "UNC106" not in rules_of(a > b)


class TestUNC107SpuriousIndependence:
    def test_positive_reconstructed_subexpression(self):
        lhs = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        rhs = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        diags = [d for d in analyze(lhs > rhs) if d.rule == "UNC107"]
        assert len(diags) == 1
        assert diags[0].severity == "warning"
        assert diags[0].data["left_leaf_slots"] != diags[0].data[
            "right_leaf_slots"]

    def test_positive_on_subtraction(self):
        lhs = Uncertain(Gaussian(0, 1)) * 2.0
        rhs = Uncertain(Gaussian(0, 1)) * 2.0
        assert "UNC107" in rules_of(lhs - rhs)

    def test_negative_bare_leaf_pair(self):
        # Two iid leaves compared directly are idiomatic (two independent
        # measurements), not a reconstruction smell.
        a = Uncertain(Gaussian(0, 1))
        b = Uncertain(Gaussian(0, 1))
        assert rules_of(a == b) == []

    def test_negative_shared_subexpression(self):
        shared = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        assert "UNC107" not in rules_of(shared > shared + 1.0)

    def test_negative_structurally_different_operands(self):
        lhs = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        rhs = Uncertain(Gaussian(0, 1)) * Uncertain(Uniform(0, 0.5))
        assert "UNC107" not in rules_of(lhs > rhs)

    def test_negative_addition_of_iid_terms(self):
        # Summing iid terms is the normal idiom; only comparison-like ops
        # (and - and /) suggest the operands were meant to be one value.
        lhs = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        rhs = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 0.5))
        assert "UNC107" not in rules_of(lhs + rhs)


class TestAnalyzeEntryPoints:
    def test_analyze_accepts_uncertain_and_node(self):
        x = Uncertain(Uniform(0, 1)) / Uncertain(Uniform(-1, 1))
        assert [d.rule for d in analyze(x.node)] == [d.rule for d in analyze(x)]

    def test_analyze_rejects_other_types(self):
        with pytest.raises(TypeError):
            analyze(42)

    def test_diagnose_method(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
        diags = bad.diagnose()
        assert [d.rule for d in diags] == ["UNC101"]
        assert all(isinstance(d, Diagnostic) for d in diags)

    def test_diagnose_clean_graph(self):
        assert (Uncertain(Gaussian(0, 1)) + 1.0).diagnose() == []

    def test_inferred_supports_exposes_every_node(self):
        x = Uncertain(Uniform(2.0, 3.0))
        y = x + 1.0
        supports = inferred_supports(y)
        assert supports[x.node.uid].lower == 2.0
        assert supports[y.node.uid].lower == 3.0
        assert supports[y.node.uid].upper == 4.0

    def test_as_dict_round_trip(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
        (diag,) = analyze(bad)
        payload = diag.as_dict()
        assert payload["rule"] == "UNC101"
        assert payload["slot"] == diag.slot
        assert "path" not in payload


class TestCompileHook:
    def test_analyze_hook_called_once_per_fresh_compile(self):
        calls = []
        x = (Uncertain(Gaussian(0, 1)) + 1.0).node
        compile_plan(x, analyze=calls.append)
        compile_plan(x, analyze=calls.append)  # cache hit: no re-analysis
        assert len(calls) == 1

    def test_warn_on_diagnostics_warns_for_errors(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
        with pytest.warns(UncertaintyWarning, match="UNC101"):
            warn_on_diagnostics(compile_plan(bad.node))

    def test_warn_on_diagnostics_silent_below_floor(self):
        decided = Uncertain(Uniform(0, 1)) > 2.0  # warning-severity only
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            diags = warn_on_diagnostics(compile_plan(decided.node))
        assert [d.rule for d in diags] == ["UNC103"]

    def test_enable_plan_analysis_end_to_end(self):
        with evaluation_config() as cfg:
            cfg.enable_plan_analysis()
            bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
            with pytest.warns(UncertaintyWarning, match="UNC101"):
                bad.samples(10)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # cache hit: must stay silent
                bad.samples(10)

    def test_enable_plan_analysis_covers_conditional_path(self):
        # bool() samples through bernoulli_sampler, not Uncertain.plan —
        # the analyzer must be wired through that compile site too.
        with evaluation_config() as cfg:
            cfg.enable_plan_analysis()
            cond = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1)) > 0.0
            with pytest.warns(UncertaintyWarning, match="UNC101"):
                bool(cond)

    def test_analysis_off_by_default(self):
        with evaluation_config() as cfg:
            assert cfg.plan_analyzer is None
            bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                bad.samples(10)


class TestAnalyzePlanOrdering:
    def test_multiple_findings_sorted_by_slot(self):
        zero_crossing = Uncertain(Gaussian(0, 1))
        bad = (Uncertain(Uniform(0, 1)) / zero_crossing) + (
            lift(math.log)(zero_crossing)
        )
        rules = [d.rule for d in analyze(bad)]
        assert sorted(rules) == ["UNC101", "UNC102"]
        diags = analyze(bad)
        assert diags == sorted(diags, key=lambda d: (d.slot, d.rule))

    def test_analyze_plan_matches_analyze(self):
        bad = Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1, 1))
        assert [d.rule for d in analyze_plan(compile_plan(bad.node))] == ["UNC101"]
