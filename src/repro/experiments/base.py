"""Shared experiment infrastructure: results, registry, table rendering."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence


@dataclasses.dataclass
class ExperimentResult:
    """A regenerated paper artifact.

    ``rows`` is a list of dicts with consistent keys (one dict per table
    row / plotted point); ``claims`` maps shape-claim descriptions to
    booleans so benchmarks can assert them and EXPERIMENTS.md can report
    them.
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    claims: dict[str, bool] = dataclasses.field(default_factory=dict)
    notes: str = ""

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values())

    def render(self) -> str:
        """Plain-text table of the rows plus claim checklist."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            lines.append(render_table(self.rows))
        for claim, ok in self.claims.items():
            lines.append(f"  [{'x' if ok else ' '}] {claim}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[dict[str, Any]]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_format(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, sep, *body])


#: experiment id -> run callable.
registry: dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering a ``run`` function under an experiment id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        registry[experiment_id] = fn
        return fn

    return wrap


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"fig14"``)."""
    if experiment_id not in registry:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        )
    return registry[experiment_id](**kwargs)
