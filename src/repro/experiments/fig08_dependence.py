"""Figures 7-8: Bayesian-network construction and shared-dependence semantics."""

from __future__ import annotations

import math

from repro.core.graph import depth, leaf_nodes, node_count
from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.experiments.base import ExperimentResult, experiment
from repro.rng import default_rng


@experiment("fig08")
def run(seed: int = 8, fast: bool = True) -> ExperimentResult:
    """Check the SSA-style dependence analysis of Figure 8.

    The program ``A = Y + X; B = A + X`` must treat both occurrences of X
    as the same variable: Var[B] = Var[Y] + 4 Var[X] (= 5 for unit
    Gaussians), not the naive Var[Y] + 2 Var[X] (= 3) of Figure 8(a)'s
    wrong network.  The degenerate case is ``X - X``, which must be
    exactly zero.
    """
    rng = default_rng(seed)
    n = 40_000 if fast else 400_000
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    a = y + x
    b = a + x
    var_b = b.var(n, rng)
    zero = x - x
    rows = [
        {
            "quantity": "Var[B] with shared X (correct network)",
            "measured": var_b,
            "correct": 5.0,
            "wrong_network_value": 3.0,
        },
        {
            "quantity": "Var[X - X]",
            "measured": zero.var(1_000, rng),
            "correct": 0.0,
            "wrong_network_value": 2.0,
        },
        {
            "quantity": "distinct nodes in B's network",
            "measured": node_count(b.node),
            "correct": 4,  # X, Y, A, B
            "wrong_network_value": 5,
        },
        {
            "quantity": "distinct leaves in B's network",
            "measured": len(leaf_nodes(b.node)),
            "correct": 2,
            "wrong_network_value": 3,
        },
        {
            "quantity": "network depth of B",
            "measured": depth(b.node),
            "correct": 2,
            "wrong_network_value": 2,
        },
    ]
    claims = {
        "Var[B] ~ 5 (shared X, Figure 8b)": abs(var_b - 5.0) < 5.0 * 3 / math.sqrt(n),
        "X - X is exactly zero": rows[1]["measured"] == 0.0,
        "both X uses reference one node": rows[3]["measured"] == 2,
    }
    return ExperimentResult(
        "fig08", "dependent random variables share nodes", rows, claims
    )
