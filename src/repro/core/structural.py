"""Canonical structural hashing of evaluation plans.

Stage 2 of the plan compiler: two plans that describe the *same shape* of
Bayesian network — identical op kinds, arities, distribution parameters
and sharing topology, regardless of which session built the node objects —
get the same **structural hash**.  The hash keys the process-wide
:class:`StructuralCache` (a bounded LRU alongside the per-root cache of
:mod:`repro.core.plan`) and the fused-kernel cache of
:mod:`repro.core.fused`, so many sessions compiling the paper's
``(y + x) + x``-shaped GPS plan share one compilation and one generated
kernel.

Canonical form
--------------

A plan's fingerprint is the sequence of per-step tokens in slot (topo)
order.  Each token records the node kind, its operation identity
(``module.qualname`` for named functions, the ufunc name for ufuncs),
its distribution's :meth:`~repro.dists.base.Distribution.structural_params`
for leaves, the point-mass value for constants, and the *parent slot
indices* — which is what makes the fingerprint capture sharing: ``x + x``
(one leaf read twice) and ``x1 + x2`` (two leaves) produce different
parent-index sequences even though the node kinds agree.

Anything whose behaviour cannot be proven equal from structure alone —
lambdas, closures, bound methods, ``FunctionDistribution``, hardened
``ResilientSource`` wrappers, unknown node kinds — makes the plan
**opaque**: :func:`plan_fingerprint` returns ``None``, the plan never
enters the structural cache, and downstream consumers (fused codegen,
worker-side payload sharing) fall back to per-plan behaviour.

Collisions
----------

The digest is a 128-bit BLAKE2b over the fingerprint's canonical repr.
The cache nevertheless refuses to trust the digest alone: on a digest
hit it compares the stored fingerprint for full structural equality and,
if the fingerprints differ (a true hash collision), assigns the newcomer
a salted variant key (``<digest>#1``, ``#2``, ...) so colliding shapes
never share cache entries or kernels.
"""

from __future__ import annotations

import hashlib
import threading
import types
from collections import OrderedDict

import numpy as np

from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    Node,
    PointMassNode,
    UnaryOpNode,
)
from repro.dists.base import Distribution, Support


class StructuralOpaque(Exception):
    """Raised while fingerprinting when a value has no canonical form."""


# ---------------------------------------------------------------------------
# Canonicalisation of parameter values.
# ---------------------------------------------------------------------------


def canonical_value(value):
    """A hashable, repr-stable token for ``value``, or ``StructuralOpaque``.

    Floats canonicalise through ``repr`` (exact round-trip, stable across
    processes); arrays through a content digest; nested distributions
    recurse.  Callables and unknown objects are opaque — equality of
    behaviour cannot be derived from structure.
    """
    if value is None:
        return ("none",)
    if isinstance(value, (bool, np.bool_)):
        return ("b", bool(value))
    if isinstance(value, (int, np.integer)):
        return ("i", int(value))
    if isinstance(value, (float, np.floating)):
        return ("f", repr(float(value)))
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, (tuple, list)):
        return ("t", tuple(canonical_value(v) for v in value))
    if isinstance(value, dict):
        return (
            "d",
            tuple(
                (str(k), canonical_value(v)) for k, v in sorted(value.items())
            ),
        )
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return ("t", tuple(canonical_value(v) for v in value.ravel().tolist()))
        data = np.ascontiguousarray(value)
        digest = hashlib.blake2b(data.tobytes(), digest_size=16).hexdigest()
        return ("a", value.shape, str(value.dtype), digest)
    if isinstance(value, Support):
        return ("sup", repr(float(value.lower)), repr(float(value.upper)))
    if isinstance(value, Distribution):
        return dist_token(value)
    raise StructuralOpaque(
        f"no canonical form for {type(value).__name__} value {value!r}"
    )


def callable_token(fn) -> tuple:
    """Identity token for an operation: ``module.qualname`` or ufunc name.

    Only *named, closure-free, module-level* callables are shareable —
    two sessions resolving ``operator.add`` or ``numpy.sqrt`` get the
    same behaviour from the same token.  Lambdas, local functions,
    closures and bound methods are opaque.
    """
    if isinstance(fn, np.ufunc):
        return ("ufunc", fn.__name__)
    if isinstance(fn, (types.FunctionType, types.BuiltinFunctionType)):
        module = getattr(fn, "__module__", None)
        qualname = getattr(fn, "__qualname__", "")
        if (
            not module
            or not qualname
            or "<lambda>" in qualname
            or "<locals>" in qualname
            or getattr(fn, "__closure__", None)
        ):
            raise StructuralOpaque(f"callable {fn!r} has no stable identity")
        return ("fn", module, qualname)
    raise StructuralOpaque(f"callable {fn!r} has no stable identity")


def dist_token(dist: Distribution) -> tuple:
    """Structural token for a leaf distribution (kind + canonical params)."""
    params = dist.structural_params()
    if params is None:
        raise StructuralOpaque(
            f"{type(dist).__name__} declares itself structurally opaque"
        )
    items = tuple(
        (str(k), canonical_value(v)) for k, v in sorted(params.items())
    )
    return ("dist", type(dist).__module__, type(dist).__qualname__, items)


# ---------------------------------------------------------------------------
# Plan fingerprints.
# ---------------------------------------------------------------------------

_COMPONENT_NODE = None


def _component_node_type():
    global _COMPONENT_NODE
    if _COMPONENT_NODE is None:
        from repro.core.joint import ComponentNode

        _COMPONENT_NODE = ComponentNode
    return _COMPONENT_NODE


def node_token(node: Node, parent_slots: tuple[int, ...]) -> tuple:
    """Canonical token for one plan step (raises ``StructuralOpaque``)."""
    kind = type(node)
    if kind is LeafNode:
        return ("leaf", dist_token(node.dist))
    if kind is PointMassNode:
        return ("pm", canonical_value(node.value))
    if kind is BinaryOpNode:
        return ("bin", node.label, callable_token(node.op), parent_slots)
    if kind is UnaryOpNode:
        return ("un", node.label, callable_token(node.op), parent_slots)
    if kind is ApplyNode:
        return (
            "apply",
            bool(node.vectorized),
            callable_token(node.fn),
            parent_slots,
        )
    if kind is _component_node_type():
        return ("comp", int(node.index), parent_slots)
    raise StructuralOpaque(f"unknown node kind {kind.__name__}")


def plan_fingerprint(plan) -> tuple | None:
    """Canonical fingerprint of ``plan``, or ``None`` when opaque.

    Isomorphic DAGs — same shape built from fresh node objects — produce
    equal fingerprints; differing distribution parameters, op identities,
    point-mass values or sharing topology produce different ones.
    """
    try:
        tokens = tuple(
            node_token(step.node, step.parent_slots) for step in plan.steps
        )
    except StructuralOpaque:
        return None
    return tokens + (("root", plan.root_slot),)


def fingerprint_digest(fingerprint: tuple) -> str:
    """128-bit BLAKE2b hex digest of a fingerprint's canonical repr."""
    return hashlib.blake2b(
        repr(fingerprint).encode("utf-8"), digest_size=16
    ).hexdigest()


# ---------------------------------------------------------------------------
# The structural cache.
# ---------------------------------------------------------------------------


class StructuralCache:
    """Bounded LRU of plan shapes keyed by structural digest.

    ``key_for(plan)`` returns ``(key, hit)``: the plan's structural key
    (``None`` for opaque plans, which are never cached) and whether a
    structurally *equal* plan was already registered.  Digest collisions
    fall back to full fingerprint equality before any reuse is reported;
    genuinely colliding shapes receive salted variant keys.
    """

    def __init__(self, limit: int = 512) -> None:
        self.limit = int(limit)
        self._lock = threading.Lock()
        # digest -> list of (fingerprint, key) variants sharing that digest.
        self._entries: OrderedDict[str, list[tuple[tuple, str]]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.collisions = 0

    def key_for(self, plan) -> tuple[str | None, bool]:
        fingerprint = plan_fingerprint(plan)
        if fingerprint is None:
            return None, False
        digest = fingerprint_digest(fingerprint)
        with self._lock:
            variants = self._entries.get(digest)
            if variants is None:
                self._entries[digest] = [(fingerprint, digest)]
                self.misses += 1
                while len(self._entries) > self.limit:
                    self._entries.popitem(last=False)
                return digest, False
            self._entries.move_to_end(digest)
            for stored, key in variants:
                if stored == fingerprint:
                    self.hits += 1
                    return key, True
            # True digest collision: same digest, different structure.
            key = f"{digest}#{len(variants)}"
            variants.append((fingerprint, key))
            self.collisions += 1
            self.misses += 1
            return key, False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._entries.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": sum(len(v) for v in self._entries.values()),
                "hits": self.hits,
                "misses": self.misses,
                "collisions": self.collisions,
                "limit": self.limit,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.collisions = 0


#: Process-global structural cache consulted by ``compile_plan``.
STRUCTURAL_CACHE = StructuralCache()


def structural_cache_stats() -> dict:
    """Hit/miss/collision counters of the process-global structural cache."""
    return STRUCTURAL_CACHE.stats()


def clear_structural_cache() -> None:
    """Drop every registered plan shape (counters reset too)."""
    STRUCTURAL_CACHE.clear()


__all__ = [
    "STRUCTURAL_CACHE",
    "StructuralCache",
    "StructuralOpaque",
    "callable_token",
    "canonical_value",
    "clear_structural_cache",
    "dist_token",
    "fingerprint_digest",
    "node_token",
    "plan_fingerprint",
    "structural_cache_stats",
]
