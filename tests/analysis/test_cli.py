"""End-to-end tests for ``python -m repro.analysis`` (both subcommands)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.demos import DEMOS, resolve_target
from repro.core.uncertain import Uncertain

BAD_SOURCE = """\
from repro import Uncertain
from repro.dists import Gaussian

x = Uncertain(Gaussian(0, 1))
y = float(x)
"""

CLEAN_SOURCE = "a = 1\n"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


class TestLintCommand:
    def test_finding_exits_nonzero(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "UNC201" in out and "bad.py:5" in out

    def test_clean_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(CLEAN_SOURCE)
        assert main(["lint", str(path)]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_exit_zero_flag(self, bad_file):
        assert main(["lint", str(bad_file), "--exit-zero"]) == 0

    def test_json_output_to_file(self, bad_file, tmp_path):
        report = tmp_path / "report.json"
        main(["lint", str(bad_file), "--json", "--output", str(report)])
        payload = json.loads(report.read_text())
        assert payload["version"] == 1
        assert payload["mode"] == "lint"
        assert [f["rule"] for f in payload["findings"]] == ["UNC201"]

    def test_lint_directory(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_SOURCE)
        (tmp_path / "ok.py").write_text(CLEAN_SOURCE)
        assert main(["lint", str(tmp_path)]) == 1
        assert "found 1 issue(s)" in capsys.readouterr().out

    def test_select_filter(self, bad_file, capsys):
        assert main(["lint", str(bad_file), "--select", "UNC203"]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_enable_unc204(self, tmp_path, capsys):
        path = tmp_path / "loop.py"
        path.write_text(
            "from repro import Uncertain\n"
            "from repro.dists import Gaussian\n"
            "x = Uncertain(Gaussian(0, 1))\n"
            "for _ in range(3):\n"
            "    if x > 1.0:\n"
            "        pass\n"
        )
        assert main(["lint", str(path)]) == 0  # opt-in rule is off (info-only)
        assert main(["lint", str(path), "--enable-unc204"]) == 0
        assert "UNC204" in capsys.readouterr().out


class TestGraphCommand:
    def test_div_by_zero_demo(self, capsys):
        assert main(["graph", "div-by-zero"]) == 1
        out = capsys.readouterr().out
        assert "UNC101" in out
        assert "inferred supports" in out
        assert "distance_m" in out

    def test_clean_demo_exits_zero(self, capsys):
        assert main(["graph", "fig08"]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_warning_only_demo_exits_zero(self, capsys):
        assert main(["graph", "decided-comparison"]) == 0
        assert "UNC103" in capsys.readouterr().out

    def test_json_report(self, capsys):
        assert main(["graph", "div-by-zero", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "graph"
        assert payload["target"] == "div-by-zero"
        assert [f["rule"] for f in payload["findings"]] == ["UNC101"]
        assert payload["inferred_supports"]  # one entry per node

    def test_module_callable_spec(self, capsys):
        assert main(
            ["graph", "tests.analysis.test_cli:build_bad_graph"]
        ) == 1
        assert "UNC101" in capsys.readouterr().out

    def test_unknown_demo_rejected(self):
        with pytest.raises(SystemExit):
            main(["graph", "no-such-demo"])

    def test_every_demo_builds(self):
        for name in DEMOS:
            assert isinstance(resolve_target(name), Uncertain)


class TestCertifyCommand:
    def test_default_corpus_certifies_and_exits_zero(self, capsys):
        assert main(["certify"]) == 0
        out = capsys.readouterr().out
        assert "rejected 0" in out
        for name in ("fig08", "gps-window", "sprt-sum"):
            assert f"{name}: certified" in out

    def test_single_target(self, capsys):
        assert main(["certify", "fig08"]) == 0
        out = capsys.readouterr().out
        assert "stream-certify: certified" in out
        assert "kernel-certify: certified" in out

    def test_json_report_to_file(self, tmp_path):
        report = tmp_path / "certify.json"
        assert main(["certify", "fig08", "--json",
                     "--output", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["mode"] == "certify"
        target = payload["targets"]["fig08"]
        assert target["status"] == "certified"
        assert target["elapsed_ms"] > 0
        assert {r["name"] for r in target["records"]} == {
            "stream-certify", "kernel-certify"}

    def test_probe_targets_do_not_fail_the_gate(self, capsys):
        # Opaque plans legitimately fall back to the probe; only UNC401
        # rejections should flip the exit code.
        assert main(
            ["certify", "tests.analysis.test_cli:build_opaque_graph"]
        ) == 0
        assert "probe" in capsys.readouterr().out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["certify", "no-such-plan"])


def build_bad_graph() -> Uncertain:
    """Target for the ``module:callable`` spec test."""
    from repro.dists import Gaussian, Uniform

    return Uncertain(Uniform(0, 10)) / Uncertain(Gaussian(1.0, 0.5))


def build_opaque_graph() -> Uncertain:
    """A plan with an opaque map: certification must defer to the probe."""
    from repro.dists import Gaussian

    return Uncertain(Gaussian(0, 1)).map(lambda v: v * 2.0)
