"""Figure 3: naive speed computation on GPS data produces absurd speeds."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, experiment
from repro.gps.sensor import GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.gps.walking import run_naive_walking
from repro.rng import default_rng

#: Sensor settings shared by the walking experiments: temporally correlated
#: error with occasional multipath glitches, the regime that produces the
#: paper's 59 mph walking speeds (see EXPERIMENTS.md).
WALK_SENSOR = dict(
    epsilon_m=4.0,
    correlation=0.9,
    glitch_probability=0.01,
    glitch_scale_m=12.0,
    glitch_duration_s=2.0,
)


@experiment("fig03")
def run(seed: int = 3, fast: bool = True) -> ExperimentResult:
    """Reproduce Figure 3's statistics for the naive speed trace.

    Paper (15-minute walk at ~3 mph): mean 3.5 mph, 35 s above 7 mph,
    absurd maxima of 30-59 mph.
    """
    duration = 300.0 if fast else 900.0
    trace = generate_walk(WalkConfig(duration_s=duration), rng=default_rng(seed))
    sensor = GpsSensor(rng=default_rng(seed + 1), **WALK_SENSOR)
    result = run_naive_walking(trace, sensor)
    speeds = result.speeds_mph
    rows = [
        {
            "series": "naive GPS speed",
            "duration_s": duration,
            "mean_mph": float(np.mean(speeds)),
            "max_mph": float(np.max(speeds)),
            "seconds_above_7mph": result.seconds_above[7.0],
            "seconds_above_20mph": result.seconds_above[20.0],
        },
        {
            "series": "ground truth",
            "duration_s": duration,
            "mean_mph": float(np.mean(result.true_speeds_mph)),
            "max_mph": float(np.max(result.true_speeds_mph)),
            "seconds_above_7mph": int(np.sum(result.true_speeds_mph > 7.0)),
            "seconds_above_20mph": 0,
        },
    ]
    claims = {
        "naive speeds include absurd values (> 20 mph while walking)": rows[0][
            "max_mph"
        ]
        > 20.0,
        "naive reports running pace (> 7 mph) for many seconds": rows[0][
            "seconds_above_7mph"
        ]
        >= 5,
        "ground truth never exceeds running pace": rows[1]["seconds_above_7mph"] == 0,
        "naive mean is inflated above the true mean": rows[0]["mean_mph"]
        > rows[1]["mean_mph"],
    }
    return ExperimentResult("fig03", "naive speed from GPS is absurd", rows, claims)
