"""Parakeet (Section 5.3): uncertainty-aware neural edge detection.

Trains Parrot (one network, point predictions) and Parakeet (a Bayesian
ensemble via Hamiltonian Monte Carlo, distribution predictions) to
approximate the Sobel operator, then compares them on the edge-detection
conditional ``s(p) > 0.1`` (Figures 15 and 16).

Run with::

    python examples/parakeet_edges.py
"""

import numpy as np

from repro.core.conditionals import evaluation_config
from repro.ml.evaluation import EDGE_THRESHOLD, parrot_point, precision_recall_sweep
from repro.ml.hmc import HMCConfig
from repro.ml.images import make_dataset
from repro.ml.parakeet import train_parakeet, train_parrot
from repro.rng import default_rng


def main() -> None:
    print("building synthetic image dataset (2000 train / 500 eval windows)...")
    x_train, t_train = make_dataset(2_000, rng=default_rng(0))
    x_eval, t_eval = make_dataset(500, rng=default_rng(1))

    print("training Parrot (single network, SGD)...")
    parrot = train_parrot(x_train, t_train, epochs=150, rng=default_rng(2))
    print(f"  eval RMSE: {parrot.mlp.rmse(x_eval, t_eval) * 100:.2f}% "
          "(paper reports 3.4% for Parrot's Sobel)")

    print("training Parakeet (SGD pre-train + Hamiltonian Monte Carlo)...")
    parakeet = train_parakeet(
        x_train, t_train,
        hmc_config=HMCConfig(n_samples=30, thin=5, burn_in=100),
        pretrain_epochs=150,
        rng=default_rng(3),
    )
    print(f"  HMC acceptance rate: {parakeet.diagnostics.acceptance_rate:.2f}, "
          f"posterior pool: {len(parakeet.weight_pool)} networks")

    # Figure 15: one prediction as a distribution.
    idx = int(np.argmin(np.abs(t_eval - EDGE_THRESHOLD)))  # borderline pixel
    ppd = parakeet.predict(x_eval[idx])
    rng = default_rng(4)
    print(f"\nborderline pixel: truth={t_eval[idx]:.3f}, "
          f"Parrot={parrot.predict(x_eval[idx]):.3f}, "
          f"PPD mean={ppd.expected_value(10_000, rng):.3f} "
          f"sd={ppd.sd(10_000, rng):.3f}")
    edge_evidence = (ppd > EDGE_THRESHOLD).evidence(20_000, rng)
    print(f"evidence it is an edge: {edge_evidence:.2f} — a graded answer a "
          "point prediction cannot give")

    with evaluation_config(rng=default_rng(5)):
        confident = (ppd > EDGE_THRESHOLD).pr(0.8)
    print(f"report edge at 80% evidence? {confident}")

    # Figure 16: the developer-selectable precision/recall tradeoff.
    print(f"\n{'detector':<22} {'precision':>9} {'recall':>7}")
    pp = parrot_point(parrot, x_eval, t_eval)
    print(f"{'Parrot (fixed point)':<22} {pp.precision:>9.2f} {pp.recall:>7.2f}")
    for point in precision_recall_sweep(
        parakeet, x_eval, t_eval, alphas=(0.1, 0.3, 0.5, 0.7, 0.9)
    ):
        label = f"Parakeet alpha={point.alpha}"
        print(f"{label:<22} {point.precision:>9.2f} {point.recall:>7.2f}")


if __name__ == "__main__":
    main()
